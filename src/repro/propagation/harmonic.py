"""Harmonic-function label propagation (Zhu, Ghahramani & Lafferty, 2003).

The classic homophily SSL method the paper uses as its "standard random
walk" comparison point (Fig. 6i): unlabeled beliefs iterate towards the
degree-weighted average of their neighbors while seed nodes stay clamped to
their one-hot labels.

:class:`HarmonicPropagator` runs the clamped averaging on the engine's
shared fixed-point loop, applying the graph's cached ``D^-1 W`` operator;
:func:`harmonic_functions` is the backwards-compatible functional wrapper.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import one_hot_labels
from repro.graph.operators import GraphOperators
from repro.propagation import kernels
from repro.propagation.engine import (
    Propagator,
    fixed_point_iterate,
    register_propagator,
)
from repro.propagation.push import LinearFixedPoint

__all__ = ["HarmonicPropagator", "harmonic_functions"]


@register_propagator()
class HarmonicPropagator(Propagator):
    """Clamped neighbor-averaging: ``F <- D^-1 W F`` with seeds held fixed.

    Assumes homophily; requires ``seed_labels`` (the clamping needs to know
    which nodes are seeds), so it cannot run from raw prior beliefs.
    """

    name = "harmonic"
    needs_compatibility = False
    supports_warm_start = True
    supports_localized = True

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        dtype=np.float64,
    ) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance, dtype=dtype)

    def linear_system(
        self, operators, prior_beliefs, seed_labels, n_classes, compatibility
    ):
        if seed_labels is None:
            raise ValueError("harmonic functions need seed_labels to clamp seeds")
        clamped = self._dense(one_hot_labels(seed_labels, n_classes))
        seeded = seed_labels >= 0
        # Clamping as a linear system: zeroing the seed rows of
        # ``D^-1 W`` and pinning their offset to the one-hot labels makes
        # ``F[seeded] = clamped[seeded]`` exactly at the fixed point.
        rowscale = np.array(operators.inverse_degrees, dtype=np.float64, copy=True)
        rowscale[seeded] = 0.0
        offset = np.zeros_like(clamped)
        offset[seeded] = clamped[seeded]
        return LinearFixedPoint(
            adjacency=operators.cast_adjacency(np.float64),
            rowscale=rowscale,
            colscale=np.ones(operators.n_nodes, dtype=np.float64),
            coupling=None,
            offset=offset,
        )

    def _run(
        self,
        operators: GraphOperators,
        prior_beliefs,
        seed_labels,
        n_classes: int,
        compatibility,
        warm_start=None,
    ) -> tuple[np.ndarray, int, bool, list[float], dict]:
        if seed_labels is None:
            raise ValueError("harmonic functions need seed_labels to clamp seeds")
        clamped = self._dense(one_hot_labels(seed_labels, n_classes), dtype=self.dtype)
        seeded = seed_labels >= 0

        if kernels.use_fused_dense():
            # Same clamping expressed linearly: zeroed seed rows plus a
            # pinned offset reproduce ``averaged[seeded] = clamped[seeded]``.
            rowscale = operators.inverse_degrees.astype(self.dtype)
            rowscale[seeded] = 0.0
            offset = np.zeros_like(clamped)
            offset[seeded] = clamped[seeded]
            step = kernels.make_fused_step(
                operators.cast_adjacency(self.dtype),
                rowscale, np.ones(operators.n_nodes, dtype=self.dtype),
                None, offset,
            )
        else:
            averaging = operators.row_normalized

            def step(current: np.ndarray, out: np.ndarray) -> np.ndarray:
                averaged = np.asarray(averaging @ current)
                averaged[seeded] = clamped[seeded]
                return averaged

        initial = clamped
        if warm_start is not None:
            # Resume from the previous beliefs, re-clamping the (possibly
            # newly revealed) seed rows to their one-hot labels.
            initial = np.array(warm_start.beliefs, dtype=self.dtype, copy=True)
            initial[seeded] = clamped[seeded]

        beliefs, n_iterations, converged, residuals = fixed_point_iterate(
            step, initial, self.max_iterations, self.tolerance
        )
        return beliefs, n_iterations, converged, residuals, {}


def harmonic_functions(
    adjacency,
    seed_labels: np.ndarray,
    n_classes: int,
    n_iterations: int = 100,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Classify unlabeled nodes with the harmonic-functions method.

    ``seed_labels`` uses ``-1`` for unlabeled nodes.  Returns a full label
    vector; seed nodes keep their given labels.  Backwards-compatible
    wrapper around :class:`HarmonicPropagator`.
    """
    propagator = HarmonicPropagator(max_iterations=n_iterations, tolerance=tolerance)
    result = propagator.propagate(adjacency, seed_labels, n_classes=n_classes)
    return result.labels
