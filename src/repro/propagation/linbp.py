"""Linearized Belief Propagation (LinBP), the propagation engine (Section 2.3).

The update equation (without echo cancellation, as the paper recommends) is

    ``F <- X + W F H_s``

where ``H_s`` is the (optionally centered) compatibility matrix scaled by
``epsilon`` so the iteration converges (Eq. 2).  Theorem 3.1 shows the final
*labels* do not depend on whether ``X`` and ``H`` are centered — the test
suite exercises exactly that equivalence — but centering plus scaling keeps
the iterates bounded, so it remains the numerically sensible default.

The optional echo-cancellation term reproduces the original LinBP update of
Gatterbauer et al. (2015) for ablation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph, labels_from_one_hot, one_hot_labels
from repro.propagation.convergence import linbp_scaling
from repro.utils.matrix import center_columns, center_matrix, degree_vector, to_csr
from repro.utils.validation import check_positive, check_square

__all__ = ["LinBPResult", "linbp", "propagate_and_label"]


@dataclass
class LinBPResult:
    """Outcome of a LinBP run.

    Attributes
    ----------
    beliefs:
        Final ``n x k`` belief matrix ``F``.
    labels:
        Arg-max labels per node (``-1`` where no information arrived).
    n_iterations:
        Number of update sweeps performed.
    scaling:
        The epsilon applied to the compatibility matrix.
    converged:
        True when the last sweep changed beliefs by less than the tolerance.
    """

    beliefs: np.ndarray
    labels: np.ndarray
    n_iterations: int
    scaling: float
    converged: bool


def _as_dense(matrix) -> np.ndarray:
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64)


def linbp(
    adjacency,
    prior_beliefs,
    compatibility: np.ndarray,
    n_iterations: int = 10,
    safety: float = 0.5,
    center: bool = True,
    echo_cancellation: bool = False,
    scaling: float | None = None,
    tolerance: float = 1e-6,
) -> LinBPResult:
    """Run LinBP and return beliefs plus arg-max labels.

    Parameters
    ----------
    adjacency:
        Symmetric sparse adjacency matrix ``W``.
    prior_beliefs:
        ``n x k`` explicit-belief matrix ``X`` (one-hot rows for seed nodes,
        zero rows for unlabeled nodes).
    compatibility:
        ``k x k`` compatibility matrix ``H`` (doubly stochastic, or already a
        residual matrix when ``center=False``).
    n_iterations:
        Number of synchronous update sweeps (paper uses 10).
    safety:
        Convergence safety factor ``s`` used to derive ``epsilon`` (Eq. 2).
    center:
        Center ``X`` and ``H`` around ``1/k`` before propagating (the
        standard LinBP formulation).  Theorem 3.1 guarantees the labels match
        the uncentered variant.
    echo_cancellation:
        Include the echo-cancellation correction term (ablation only).
    scaling:
        Explicit epsilon; overrides the automatic choice when provided.
    """
    check_positive(n_iterations, "n_iterations")
    adjacency = to_csr(adjacency)
    compatibility = check_square(compatibility, "compatibility")
    explicit = _as_dense(prior_beliefs)
    if explicit.shape[0] != adjacency.shape[0]:
        raise ValueError(
            f"prior beliefs have {explicit.shape[0]} rows for a graph with "
            f"{adjacency.shape[0]} nodes"
        )
    if explicit.shape[1] != compatibility.shape[0]:
        raise ValueError(
            f"prior beliefs have {explicit.shape[1]} columns but the "
            f"compatibility matrix is {compatibility.shape[0]}x{compatibility.shape[0]}"
        )

    if center:
        priors = center_columns(explicit)
        modulation = center_matrix(compatibility)
    else:
        priors = explicit
        modulation = compatibility

    if scaling is None:
        centered_for_radius = center_matrix(compatibility) if not center else modulation
        scaling = linbp_scaling(adjacency, centered_for_radius, safety=safety)
    modulation = scaling * modulation

    beliefs = priors.copy()
    degrees = degree_vector(adjacency)
    converged = False
    iterations_run = 0
    for iteration in range(n_iterations):
        propagated = np.asarray(adjacency @ beliefs) @ modulation
        if echo_cancellation:
            # Echo cancellation subtracts each node's own (modulated) echo:
            # F <- X + W F H - D F H^2 (linearized correction term).
            propagated -= degrees[:, None] * (beliefs @ modulation @ modulation)
        updated = priors + propagated
        delta = float(np.max(np.abs(updated - beliefs))) if beliefs.size else 0.0
        beliefs = updated
        iterations_run = iteration + 1
        if delta < tolerance:
            converged = True
            break

    return LinBPResult(
        beliefs=beliefs,
        labels=labels_from_one_hot(beliefs),
        n_iterations=iterations_run,
        scaling=float(scaling),
        converged=converged,
    )


def propagate_and_label(
    graph: Graph,
    seed_labels: np.ndarray,
    compatibility: np.ndarray,
    n_iterations: int = 10,
    safety: float = 0.5,
    **kwargs,
) -> np.ndarray:
    """Convenience wrapper: propagate from a partial labeling, return labels.

    ``seed_labels`` is a full-length vector with ``-1`` for unlabeled nodes.
    Seed nodes keep their given label in the output (they are never
    re-classified), matching the evaluation protocol of the paper which only
    scores the remaining nodes.
    """
    if graph.n_classes is None:
        raise ValueError("graph must know its number of classes")
    prior = one_hot_labels(seed_labels, graph.n_classes)
    result = linbp(
        graph.adjacency,
        prior,
        compatibility,
        n_iterations=n_iterations,
        safety=safety,
        **kwargs,
    )
    predicted = result.labels.copy()
    seeded = seed_labels >= 0
    predicted[seeded] = seed_labels[seeded]
    return predicted
