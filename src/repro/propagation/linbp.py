"""Linearized Belief Propagation (LinBP), the propagation engine (Section 2.3).

The update equation (without echo cancellation, as the paper recommends) is

    ``F <- X + W F H_s``

where ``H_s`` is the (optionally centered) compatibility matrix scaled by
``epsilon`` so the iteration converges (Eq. 2).  Theorem 3.1 shows the final
*labels* do not depend on whether ``X`` and ``H`` are centered — the test
suite exercises exactly that equivalence — but centering plus scaling keeps
the iterates bounded, so it remains the numerically sensible default.

The optional echo-cancellation term reproduces the original LinBP update of
Gatterbauer et al. (2015) for ablation purposes; it is registered separately
as the ``linbp_echo`` propagator.

:class:`LinBPPropagator` is the engine-native implementation; :func:`linbp`
and :func:`propagate_and_label` are thin backwards-compatible wrappers.  When
called with a :class:`~repro.graph.graph.Graph`, the convergence scaling
``epsilon`` (which needs the graph's spectral radius) comes from the cached
operator layer, so repeated runs on the same graph never re-run the power
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.operators import GraphOperators
from repro.propagation import kernels
from repro.propagation.engine import (
    Propagator,
    fixed_point_iterate,
    register_propagator,
)
from repro.propagation.push import LinearFixedPoint
from repro.utils.matrix import center_columns, center_matrix
from repro.utils.validation import check_positive

__all__ = [
    "LinBPResult",
    "LinBPPropagator",
    "EchoLinBPPropagator",
    "linbp",
    "propagate_and_label",
]


@dataclass
class LinBPResult:
    """Outcome of a LinBP run (legacy result type of :func:`linbp`).

    Attributes
    ----------
    beliefs:
        Final ``n x k`` belief matrix ``F``.
    labels:
        Arg-max labels per node (``-1`` where no information arrived).
    n_iterations:
        Number of update sweeps performed.
    scaling:
        The epsilon applied to the compatibility matrix.
    converged:
        True when the last sweep changed beliefs by less than the tolerance.
    """

    beliefs: np.ndarray
    labels: np.ndarray
    n_iterations: int
    scaling: float
    converged: bool


@register_propagator()
class LinBPPropagator(Propagator):
    """LinBP on the unified engine: ``F <- X + W F H_s``.

    Parameters
    ----------
    max_iterations:
        Number of synchronous update sweeps (paper uses 10).
    tolerance:
        Early-exit threshold on the max-norm belief change.
    dtype:
        Iterate dtype; ``numpy.float32`` halves memory traffic.
    safety:
        Convergence safety factor ``s`` used to derive ``epsilon`` (Eq. 2).
    center:
        Center ``X`` and ``H`` around ``1/k`` before propagating (the
        standard LinBP formulation).  Theorem 3.1 guarantees the labels
        match the uncentered variant.
    echo_cancellation:
        Include the echo-cancellation correction term (ablation only).
    scaling:
        Explicit epsilon; overrides the automatic choice when provided.
    mixed_precision_warm:
        When resuming from a warm start with float64 iterates, run the bulk
        of the remaining sweeps in float32 (half the memory traffic) and
        only polish the final stretch in float64.  The polish converges to
        the same float64 fixed point within ``tolerance``, so results agree
        with a pure-float64 resume to the solver tolerance; disable for
        bit-level reproducibility of warm runs.
    """

    name = "linbp"
    needs_compatibility = True
    supports_warm_start = True
    supports_localized = True

    def __init__(
        self,
        max_iterations: int = 10,
        tolerance: float = 1e-6,
        dtype=np.float64,
        safety: float = 0.5,
        center: bool = True,
        echo_cancellation: bool = False,
        scaling: float | None = None,
        mixed_precision_warm: bool = True,
    ) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance, dtype=dtype)
        check_positive(safety, "safety")
        self.safety = float(safety)
        self.center = bool(center)
        self.echo_cancellation = bool(echo_cancellation)
        self.scaling = scaling
        self.mixed_precision_warm = bool(mixed_precision_warm)
        # Epsilon depends on rho(W) unless pinned explicitly, in which case
        # the streaming session need not track the spectral radius at all.
        self.uses_spectral_scaling = scaling is None

    def _system_terms(
        self, operators: GraphOperators, prior_beliefs, compatibility
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Shared prep: (possibly centered) priors, modulation and epsilon."""
        explicit = self._dense(prior_beliefs)
        if self.center:
            priors = center_columns(explicit)
            modulation = center_matrix(compatibility)
        else:
            priors = explicit
            modulation = np.asarray(compatibility, dtype=np.float64)

        scaling = self.scaling
        if scaling is None:
            centered = modulation if self.center else center_matrix(compatibility)
            scaling = operators.linbp_scaling(centered, safety=self.safety)
        return priors, modulation, float(scaling)

    def linear_system(
        self, operators, prior_beliefs, seed_labels, n_classes, compatibility
    ):
        priors, modulation, scaling = self._system_terms(
            operators, prior_beliefs, compatibility
        )
        ones = np.ones(operators.n_nodes)
        return LinearFixedPoint(
            adjacency=operators.cast_adjacency(np.float64),
            rowscale=ones,
            colscale=ones,
            coupling=np.asarray(scaling * modulation, dtype=np.float64),
            offset=np.asarray(priors, dtype=np.float64),
            details={"scaling": scaling},
        )

    # Ceiling on epsilon-drift correction terms.  The series contracts by
    # ~rho(scaling * W x modulation) ~ safety per term, so sub-tolerance
    # truncation needs tens of terms at most; hitting the cap means the
    # operator is barely contracting and only dense seeding is safe.
    MAX_DRIFT_CORRECTION_TERMS = 80

    def _localized_prepare(self, warm, spec):
        initial = np.array(warm.beliefs, dtype=np.float64, copy=True)
        previous_scaling = warm.details.get("scaling")
        scaling = spec.details.get("scaling")
        hint_ok = True
        if previous_scaling and scaling:
            drift = float(scaling) / float(previous_scaling) - 1.0
            if drift != 0.0:
                # The refreshed convergence epsilon rescales the coupling on
                # *every* row, so the fixed point moves globally by
                # ``delta = (I - W . C)^-1 drift (F - B)`` — expand that
                # inverse as its Neumann series and absorb terms until the
                # truncation drops below the push threshold.  The leftover
                # residual on rows the delta didn't touch equals exactly the
                # first omitted term, so a converged series keeps local
                # hints valid at any drift magnitude; each term is one
                # O(nnz k) matvec with no frontier bookkeeping, far cheaper
                # than letting the push frontier saturate.
                cutoff = 0.25 * self.tolerance
                term = drift * (initial - spec.offset)
                initial += term
                terms = 0
                peak = float(np.abs(term).max())
                adjacency = spec.adjacency
                coupling = spec.coupling
                # Once the terms are small their absolute float32 rounding
                # (~6e-8 relative per term) is orders of magnitude under the
                # cutoff, so the long geometric tail runs at half the memory
                # traffic; the switch threshold keeps the accumulated single
                # precision error below ~1e-3 of the truncation cutoff.
                single_threshold = max(1e3 * cutoff, 1e-5)
                single = False
                while peak > cutoff and terms < self.MAX_DRIFT_CORRECTION_TERMS:
                    if not single and peak < single_threshold:
                        adjacency = adjacency.astype(np.float32)
                        coupling = coupling.astype(np.float32)
                        term = term.astype(np.float32)
                        single = True
                    term = np.asarray(adjacency @ term) @ coupling
                    initial += term
                    terms += 1
                    peak = float(np.abs(term).max())
                hint_ok = peak <= cutoff
        return initial, hint_ok

    def _run(
        self,
        operators: GraphOperators,
        prior_beliefs,
        seed_labels,
        n_classes: int,
        compatibility: np.ndarray,
        warm_start=None,
    ) -> tuple[np.ndarray, int, bool, list[float], dict]:
        priors, modulation, scaling = self._system_terms(
            operators, prior_beliefs, compatibility
        )
        modulation = np.asarray(scaling * modulation, dtype=self.dtype)
        priors = np.asarray(priors, dtype=self.dtype)
        adjacency = operators.cast_adjacency(self.dtype)
        echo = self.echo_cancellation
        degrees = operators.degrees.astype(self.dtype) if echo else None
        echo_modulation = modulation @ modulation if echo else None

        if not echo and kernels.use_fused_dense():
            ones = np.ones(operators.n_nodes, dtype=self.dtype)
            step = kernels.make_fused_step(
                adjacency, ones, ones, modulation, priors
            )
        else:
            def step(current: np.ndarray, out: np.ndarray) -> np.ndarray:
                propagated = np.asarray(adjacency @ current)
                np.matmul(propagated, modulation, out=out)
                if echo:
                    # Echo cancellation subtracts each node's own (modulated)
                    # echo: F <- X + W F H - D F H^2 (linearized correction
                    # term).
                    out -= degrees[:, None] * (current @ echo_modulation)
                out += priors
                return out

        initial = priors
        if warm_start is not None:
            # The iterate lives in the (possibly centered) belief space, so a
            # previous result's beliefs resume the fixed point directly.  A
            # first-order correction for the drifted convergence scaling —
            # F(eps_new) ~ F + (eps_new/eps_old - 1)(F - X) — removes most of
            # the global residual that an epsilon refresh would otherwise
            # inject everywhere (the echo variant's epsilon enters
            # quadratically, so it resumes uncorrected).
            initial = np.asarray(warm_start.beliefs, dtype=self.dtype)
            previous_scaling = warm_start.details.get("scaling")
            if previous_scaling and not echo:
                drift = float(scaling) / float(previous_scaling) - 1.0
                if drift != 0.0:
                    initial = initial + drift * (initial - priors)

        coarse_iterations = 0
        coarse_residuals: list[float] = []
        budget = self.max_iterations
        if (
            warm_start is not None
            and self.mixed_precision_warm
            and not echo
            and self.dtype == np.float64
            and budget > 2
        ):
            # Mixed-precision resume: burn down the residual in float32
            # (half the memory traffic of the dominant W @ F product), then
            # polish to the float64 fixed point.  One float64 probe sweep
            # measures how far the warm start actually is — a
            # nearly-converged resume skips the float32 phase, whose cast
            # noise would only re-dirty the iterate.  The float32 budget is
            # capped regardless, so a pathological stall costs bounded cheap
            # sweeps, never the run.
            switch_tolerance = max(2e-6, 50.0 * self.tolerance)
            probe, probe_iterations, probe_converged, probe_residuals = (
                fixed_point_iterate(step, initial, 1, self.tolerance)
            )
            coarse_iterations += probe_iterations
            coarse_residuals += probe_residuals
            budget -= probe_iterations
            initial = probe
            if not probe_converged and probe_residuals[-1] > switch_tolerance:
                adjacency32 = operators.cast_adjacency(np.float32)
                modulation32 = modulation.astype(np.float32)
                priors32 = priors.astype(np.float32)

                if kernels.use_fused_dense():
                    ones32 = np.ones(operators.n_nodes, dtype=np.float32)
                    coarse_step = kernels.make_fused_step(
                        adjacency32, ones32, ones32, modulation32, priors32
                    )
                else:
                    def coarse_step(
                        current: np.ndarray, out: np.ndarray
                    ) -> np.ndarray:
                        propagated = np.asarray(adjacency32 @ current)
                        np.matmul(propagated, modulation32, out=out)
                        out += priors32
                        return out

                coarse, fast_iterations, _, fast_residuals = fixed_point_iterate(
                    coarse_step,
                    initial.astype(np.float32),
                    min(budget, 80),
                    switch_tolerance,
                )
                coarse_iterations += fast_iterations
                coarse_residuals += fast_residuals
                budget = max(0, budget - fast_iterations)
                initial = coarse.astype(np.float64)

        beliefs, n_iterations, converged, residuals = fixed_point_iterate(
            step, initial, budget, self.tolerance
        )
        return (
            beliefs,
            coarse_iterations + n_iterations,
            converged,
            coarse_residuals + residuals,
            {"scaling": float(scaling)},
        )


@register_propagator()
class EchoLinBPPropagator(LinBPPropagator):
    """Original LinBP of Gatterbauer et al. (2015) with echo cancellation.

    The echo term ``- D F H^2`` is outside the ``F = B + A F C`` family, so
    the localized push mode stays off and ``localized=`` requests fall back
    to the dense sweep (exact parity).
    """

    name = "linbp_echo"
    supports_localized = False

    def __init__(
        self,
        max_iterations: int = 10,
        tolerance: float = 1e-6,
        dtype=np.float64,
        safety: float = 0.5,
        center: bool = True,
        scaling: float | None = None,
    ) -> None:
        super().__init__(
            max_iterations=max_iterations,
            tolerance=tolerance,
            dtype=dtype,
            safety=safety,
            center=center,
            echo_cancellation=True,
            scaling=scaling,
        )


def linbp(
    adjacency,
    prior_beliefs,
    compatibility: np.ndarray,
    n_iterations: int = 10,
    safety: float = 0.5,
    center: bool = True,
    echo_cancellation: bool = False,
    scaling: float | None = None,
    tolerance: float = 1e-6,
) -> LinBPResult:
    """Run LinBP and return beliefs plus arg-max labels.

    Backwards-compatible functional wrapper around
    :class:`LinBPPropagator`; see the class for parameter semantics.
    """
    propagator = LinBPPropagator(
        max_iterations=n_iterations,
        tolerance=tolerance,
        safety=safety,
        center=center,
        echo_cancellation=echo_cancellation,
        scaling=scaling,
    )
    result = propagator.propagate(
        adjacency, compatibility=compatibility, prior_beliefs=prior_beliefs
    )
    return LinBPResult(
        beliefs=result.beliefs,
        labels=result.labels,
        n_iterations=result.n_iterations,
        scaling=result.details["scaling"],
        converged=result.converged,
    )


def propagate_and_label(
    graph: Graph,
    seed_labels: np.ndarray,
    compatibility: np.ndarray,
    n_iterations: int = 10,
    safety: float = 0.5,
    **kwargs,
) -> np.ndarray:
    """Convenience wrapper: propagate from a partial labeling, return labels.

    ``seed_labels`` is a full-length vector with ``-1`` for unlabeled nodes.
    Seed nodes keep their given label in the output (they are never
    re-classified), matching the evaluation protocol of the paper which only
    scores the remaining nodes.  Extra ``kwargs`` are forwarded to
    :class:`LinBPPropagator` (``center``, ``scaling``, ``tolerance``, ...).
    """
    if graph.n_classes is None:
        raise ValueError("graph must know its number of classes")
    propagator = LinBPPropagator(
        max_iterations=n_iterations, safety=safety, **kwargs
    )
    result = propagator.propagate(graph, seed_labels, compatibility=compatibility)
    return result.labels
