"""Random-number-generator plumbing.

Every stochastic component in the library (graph generation, seed sampling,
restart initialization) accepts either ``None``, an integer seed, or an
existing :class:`numpy.random.Generator`.  This mirrors the scikit-learn
``random_state`` convention the paper's released code follows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives fresh OS entropy, an int gives a reproducible generator,
    and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an integer, or a numpy Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by DCEr so each restart draws its initial point from an independent
    stream, keeping runs reproducible regardless of restart count.
    """
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
