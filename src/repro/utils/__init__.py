"""Shared utilities: matrix helpers, validation, timing and RNG handling."""

from repro.utils.matrix import (
    center_columns,
    center_matrix,
    frobenius_distance,
    is_doubly_stochastic,
    is_symmetric,
    nearest_doubly_stochastic,
    row_normalize,
    scale_normalize,
    symmetric_normalize,
    to_csr,
)
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_adjacency,
    check_labels,
    check_probability,
    check_square,
)

__all__ = [
    "Timer",
    "center_columns",
    "center_matrix",
    "check_adjacency",
    "check_labels",
    "check_probability",
    "check_square",
    "ensure_rng",
    "frobenius_distance",
    "is_doubly_stochastic",
    "is_symmetric",
    "nearest_doubly_stochastic",
    "row_normalize",
    "scale_normalize",
    "symmetric_normalize",
    "to_csr",
]
