"""Dense and sparse matrix helpers used throughout the library.

The estimators in :mod:`repro.core` work on small ``k x k`` dense matrices
(class statistics), while the propagation algorithms in
:mod:`repro.propagation` work on large ``n x n`` sparse adjacency matrices.
This module collects the normalizations, projections and distances both
sides rely on:

* the three normalization variants of the paper (Eq. 9, 10, 11),
* the projection onto symmetric doubly-stochastic matrices used by MCE,
* centering/residual helpers used by the LinBP analysis (Section 3.1),
* sparse adjacency normalizations (row / column / symmetric) shared by the
  propagation algorithms and memoized per graph by
  :class:`repro.graph.operators.GraphOperators`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "to_csr",
    "row_normalize",
    "symmetric_normalize",
    "scale_normalize",
    "center_matrix",
    "center_columns",
    "residual_matrix",
    "is_symmetric",
    "is_doubly_stochastic",
    "is_row_stochastic",
    "nearest_doubly_stochastic",
    "sinkhorn_projection",
    "frobenius_distance",
    "degree_vector",
    "degree_matrix",
    "safe_reciprocal",
    "row_normalized_adjacency",
    "column_normalized_adjacency",
    "symmetric_normalized_adjacency",
]


def to_csr(matrix, dtype=np.float64) -> sp.csr_matrix:
    """Return ``matrix`` as a CSR sparse matrix with the requested dtype.

    Accepts dense arrays, any scipy sparse format, or an existing CSR matrix
    (returned as-is when the dtype already matches, so no copy is made).
    """
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        if csr.dtype != dtype:
            csr = csr.astype(dtype)
        return csr
    dense = np.asarray(matrix, dtype=dtype)
    return sp.csr_matrix(dense)


def safe_reciprocal(values: np.ndarray) -> np.ndarray:
    """Element-wise ``1/x`` with zeros mapped to zero instead of ``inf``.

    Row sums of observed statistics matrices can legitimately be zero when a
    class has no labeled representative in the seed set; those rows must stay
    zero after normalization rather than propagate NaNs into the optimizer.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(values)
    nonzero = values != 0
    out[nonzero] = 1.0 / values[nonzero]
    return out


def row_normalize(matrix: np.ndarray) -> np.ndarray:
    """Normalization variant 1 (Eq. 9): make each row sum to one.

    ``P = diag(M 1)^-1 M``.  Rows that sum to zero are left as all-zero rows.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    row_sums = matrix.sum(axis=1)
    return safe_reciprocal(row_sums)[:, None] * matrix


def symmetric_normalize(matrix: np.ndarray) -> np.ndarray:
    """Normalization variant 2 (Eq. 10): ``D^-1/2 M D^-1/2`` (LGC-style)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    row_sums = matrix.sum(axis=1)
    inv_sqrt = np.sqrt(safe_reciprocal(row_sums))
    return inv_sqrt[:, None] * matrix * inv_sqrt[None, :]


def scale_normalize(matrix: np.ndarray) -> np.ndarray:
    """Normalization variant 3 (Eq. 11): scale so the mean entry is ``1/k``.

    ``P = k (1^T M 1)^-1 M`` for a ``k x k`` matrix ``M``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    total = matrix.sum()
    if total == 0:
        return np.zeros_like(matrix)
    k = matrix.shape[0]
    return (k / total) * matrix


def center_matrix(matrix: np.ndarray, center: float | None = None) -> np.ndarray:
    """Return the residual of ``matrix`` around ``center`` (default ``1/k``).

    Centering around ``1/k`` is how LinBP turns a stochastic compatibility
    matrix into its residual form ``H~`` (Section 2.3).  Theorem 3.1 shows the
    final labels do not depend on the centering, which our tests verify.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if center is None:
        center = 1.0 / matrix.shape[1]
    return matrix - center


def center_columns(matrix: np.ndarray) -> np.ndarray:
    """Center each row of an explicit-belief matrix around ``1/k``.

    Only rows that contain any information (non-zero rows) are centered;
    unlabeled nodes keep their all-zero prior, matching the paper's
    convention that unlabeled nodes have a null row in ``X``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    k = matrix.shape[1]
    centered = matrix.copy()
    labeled = np.abs(matrix).sum(axis=1) > 0
    centered[labeled] = matrix[labeled] - 1.0 / k
    return centered


def residual_matrix(matrix: np.ndarray) -> np.ndarray:
    """Alias for :func:`center_matrix` with the default ``1/k`` center."""
    return center_matrix(matrix)


def is_symmetric(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Return True if the dense matrix equals its transpose within ``tol``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.T, atol=tol))


def is_row_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Return True if every row of ``matrix`` sums to one within ``tol``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return bool(np.allclose(matrix.sum(axis=1), 1.0, atol=tol))


def is_doubly_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Return True if rows and columns of ``matrix`` all sum to one."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rows_ok = np.allclose(matrix.sum(axis=1), 1.0, atol=tol)
    cols_ok = np.allclose(matrix.sum(axis=0), 1.0, atol=tol)
    return bool(rows_ok and cols_ok)


def nearest_doubly_stochastic(matrix: np.ndarray, symmetric: bool = True) -> np.ndarray:
    """Project onto the affine set of (symmetric) doubly-stochastic matrices.

    This is the Frobenius-norm projection used by MCE (Eq. 12): find the
    matrix ``H`` with ``H 1 = 1`` (and ``H = H^T`` when ``symmetric``) closest
    to the observed statistics matrix.  The projection onto the affine
    constraints has the closed form

    ``P(M) = M + (1/k)(I - M_r)(1 1^T)/k ...``

    but rather than hand-deriving it we use the well-known alternating
    projection onto the two affine subspaces ``{M : M 1 = 1}`` and
    ``{M : M^T 1 = 1}`` (von Neumann alternating projections converge for
    affine sets), with an optional symmetrization step.  Entries are *not*
    clipped to be non-negative: the paper's matrices stay non-negative in
    practice and the optimization formulation does not require it.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    k = matrix.shape[0]
    current = matrix.copy()
    if symmetric:
        current = 0.5 * (current + current.T)
    ones = np.ones(k)
    for _ in range(200):
        # Project onto {M : M 1 = 1}: shift each row by its deficit / k.
        row_deficit = (1.0 - current @ ones) / k
        current = current + row_deficit[:, None]
        # Project onto {M : M^T 1 = 1}.
        col_deficit = (1.0 - ones @ current) / k
        current = current + col_deficit[None, :]
        if symmetric:
            current = 0.5 * (current + current.T)
        if np.allclose(current.sum(axis=1), 1.0, atol=1e-12) and np.allclose(
            current.sum(axis=0), 1.0, atol=1e-12
        ):
            break
    return current


def sinkhorn_projection(
    matrix: np.ndarray, max_iter: int = 1000, tol: float = 1e-10
) -> np.ndarray:
    """Sinkhorn-Knopp scaling of a non-negative matrix to doubly-stochastic form.

    Used by the synthetic data generator to produce valid planted
    compatibility matrices from arbitrary non-negative affinity patterns.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if np.any(matrix < 0):
        raise ValueError("Sinkhorn scaling requires a non-negative matrix")
    current = matrix.copy()
    for _ in range(max_iter):
        current = row_normalize(current)
        current = row_normalize(current.T).T
        if is_doubly_stochastic(current, tol=tol):
            break
    return current


def frobenius_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius (entry-wise L2) distance between two matrices."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def degree_vector(adjacency) -> np.ndarray:
    """Return the (weighted) degree of each node as a 1-D array."""
    adjacency = to_csr(adjacency)
    return np.asarray(adjacency.sum(axis=1)).ravel()


def degree_matrix(adjacency) -> sp.csr_matrix:
    """Return the diagonal degree matrix ``D`` of the adjacency matrix."""
    return sp.diags(degree_vector(adjacency), format="csr")


def row_normalized_adjacency(adjacency) -> sp.csr_matrix:
    """Random-walk operator ``D^-1 W`` in CSR format.

    Rows of isolated nodes (zero degree) stay all-zero instead of NaN.  This
    is the operator behind harmonic-function propagation: one application
    replaces each node's beliefs with the degree-weighted neighbor average.
    """
    adjacency = to_csr(adjacency)
    inverse_degree = safe_reciprocal(degree_vector(adjacency))
    return (sp.diags(inverse_degree, format="csr") @ adjacency).tocsr()


def column_normalized_adjacency(adjacency) -> sp.csr_matrix:
    """Column-stochastic operator ``W D^-1`` used by random walks (Eq. 3).

    Columns of isolated nodes stay all-zero; the walk loses their mass, which
    the restart term replenishes.
    """
    adjacency = to_csr(adjacency)
    column_sums = np.asarray(adjacency.sum(axis=0)).ravel()
    scale = sp.diags(safe_reciprocal(column_sums), format="csr")
    return (adjacency @ scale).tocsr()


def symmetric_normalized_adjacency(adjacency) -> sp.csr_matrix:
    """Symmetric operator ``D^-1/2 W D^-1/2`` (LGC, Eq. 10 normalization)."""
    adjacency = to_csr(adjacency)
    inv_sqrt_degree = np.sqrt(safe_reciprocal(degree_vector(adjacency)))
    normalizer = sp.diags(inv_sqrt_degree, format="csr")
    return (normalizer @ adjacency @ normalizer).tocsr()
