"""Deterministic hash placement shared by grid sharding and session routing.

Two layers of the system spread named work over N peers and must agree with
themselves forever:

* :meth:`repro.runner.spec.GridSpec.shard` assigns every run to one of N
  shard processes by its SHA-256 content hash — the assignment has to stay
  bit-for-bit stable across releases or per-machine result caches go cold;
* the serving router (:mod:`repro.serve.router`) assigns every named
  session to one of N worker processes — the assignment has to be
  recomputable by anyone (router, smart clients, a recovering supervisor)
  from nothing but the name and the worker count.

Both use the same primitive: interpret the leading 64 bits of a SHA-256
hex digest as an integer and reduce it modulo N.  Keeping the primitive in
one place is the point of this module — the runner and the router cannot
drift apart, and the regression tests pin the exact arithmetic.

A useful consequence of plain modulo placement: for worker counts along a
divisor chain (1, 2, 4, 8…), ``digest % (n/k)`` is fully determined by
``digest % n`` — halving a fleet never splits the sessions of one
surviving worker across two targets.
"""

from __future__ import annotations

import hashlib

__all__ = ["assign_hex", "place", "placement_map"]


def assign_hex(hex_digest: str, n: int) -> int:
    """Assign a hex digest to one of ``n`` buckets.

    This is the exact arithmetic :meth:`GridSpec.shard` has used since the
    sharded runner shipped: the first 16 hex characters (64 bits) of the
    digest, as an integer, modulo ``n``.  Do not change it — existing shard
    assignments (and therefore per-machine result caches) depend on it.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"bucket count must be >= 1, got {n}")
    if len(hex_digest) < 16:
        raise ValueError(
            f"need at least 16 hex characters, got {len(hex_digest)} "
            f"({hex_digest!r})"
        )
    return int(hex_digest[:16], 16) % n


def place(name: str, n: int) -> int:
    """Deterministically place a name onto one of ``n`` peers.

    The name is hashed with SHA-256 first, so placement quality does not
    depend on the shape of human-chosen names; the reduction is
    :func:`assign_hex` — the same arithmetic as grid sharding.
    """
    digest = hashlib.sha256(str(name).encode("utf-8")).hexdigest()
    return assign_hex(digest, n)


def placement_map(names, n: int) -> dict[int, list[str]]:
    """Group ``names`` by their assigned peer: ``{index: [name, ...]}``.

    Every index in ``range(n)`` is present (possibly empty), so callers can
    iterate peers without guarding for missing keys.
    """
    n = int(n)
    groups: dict[int, list[str]] = {index: [] for index in range(n)}
    for name in names:
        groups[place(name, n)].append(str(name))
    return groups
