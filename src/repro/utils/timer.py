"""Lightweight wall-clock timing used by the benchmark harness.

.. deprecated::
    :class:`Timer` predates the observability layer.  New code should use
    :func:`repro.obs.span` (which both times the region and attributes it to
    the active trace) or a plain ``time.perf_counter()`` pair.  The class
    keeps working — the benchmark harness and external callers rely on its
    exact accumulate-across-entries semantics — but emits a
    :class:`DeprecationWarning` once per process on first use.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

__all__ = ["Timer"]

_warned = False


def _warn_deprecated() -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "repro.utils.timer.Timer is deprecated; use repro.obs.span (traced, "
        "metrics-aware) or time.perf_counter() directly",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class Timer:
    """Context-manager stopwatch that accumulates elapsed wall-clock time.

    Example
    -------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        _warn_deprecated()

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None
