"""Input validation helpers shared by the public API surface.

All public entry points validate their arguments eagerly and raise
``ValueError``/``TypeError`` with actionable messages, so downstream sparse
linear algebra never fails with an opaque shape error deep inside scipy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "check_adjacency",
    "check_labels",
    "check_probability",
    "check_square",
    "check_positive",
    "check_fraction",
]


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array and return it as float."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square 2-D matrix, got shape {matrix.shape}")
    return matrix


def check_adjacency(adjacency, require_symmetric: bool = True) -> sp.csr_matrix:
    """Validate an adjacency matrix and return it in CSR format.

    Checks that the matrix is square, has no negative weights and (by
    default) is symmetric, since the paper works on undirected graphs.
    """
    if sp.issparse(adjacency):
        csr = adjacency.tocsr().astype(np.float64)
    else:
        dense = np.asarray(adjacency, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(f"adjacency must be 2-D, got {dense.ndim}-D")
        csr = sp.csr_matrix(dense)
    if csr.shape[0] != csr.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {csr.shape}")
    if csr.nnz and csr.data.min() < 0:
        raise ValueError("adjacency must not contain negative edge weights")
    if require_symmetric:
        difference = (csr - csr.T).tocoo()
        if difference.nnz and np.abs(difference.data).max() > 1e-8:
            raise ValueError("adjacency must be symmetric (undirected graph)")
    return csr


def check_labels(labels, n_nodes: int | None = None, n_classes: int | None = None) -> np.ndarray:
    """Validate a node label vector.

    ``labels`` uses ``-1`` for unlabeled nodes and ``0..k-1`` for classes.
    Returns the vector as an ``int64`` array.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be a 1-D vector, got shape {labels.shape}")
    if not np.issubdtype(labels.dtype, np.integer):
        if not np.all(labels == labels.astype(np.int64)):
            raise ValueError("labels must be integers (-1 for unlabeled)")
    labels = labels.astype(np.int64)
    if labels.size and labels.min() < -1:
        raise ValueError("labels must be >= -1 (-1 means unlabeled)")
    if n_nodes is not None and labels.shape[0] != n_nodes:
        raise ValueError(f"expected {n_nodes} labels, got {labels.shape[0]}")
    if n_classes is not None and labels.size and labels.max() >= n_classes:
        raise ValueError(
            f"label {labels.max()} out of range for {n_classes} classes"
        )
    return labels


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: float, name: str = "fraction") -> float:
    """Validate a strictly positive fraction in (0, 1]."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value


def check_positive(value, name: str = "value", strict: bool = True):
    """Validate that a scalar is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value
