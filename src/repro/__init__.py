"""Factorized graph representations for semi-supervised learning from sparse data.

A faithful, laptop-scale reproduction of the SIGMOD 2020 paper by
Krishna Kumar P., Paul Langton and Wolfgang Gatterbauer.  The library covers:

* the propagation substrate — LinBP, loopy BP, random-walk and homophily
  baselines, all behind one :class:`Propagator` interface with string-keyed
  registries (:mod:`repro.propagation`),
* the graph substrate — sparse graph container, planted-compatibility
  generator and dataset stand-ins (:mod:`repro.graph`),
* the paper's contribution — factorized non-backtracking path statistics and
  the compatibility estimators Holdout, LCE, MCE, DCE and DCEr
  (:mod:`repro.core`),
* the evaluation harness reproducing every figure and table
  (:mod:`repro.eval` and the top-level ``benchmarks/`` directory).

Quickstart
----------
>>> from repro import generate_graph, skew_compatibility, DCEr, run_experiment
>>> graph = generate_graph(2_000, 10_000, skew_compatibility(3, h=3.0), seed=7)
>>> result = run_experiment(graph, DCEr(seed=0), label_fraction=0.05, seed=1)
>>> result.accuracy > 0.5
True
"""

from repro.core.compatibility import (
    homophily_compatibility,
    random_compatibility,
    skew_compatibility,
)
from repro.core.estimators import (
    DCE,
    DCEr,
    GoldStandard,
    HeuristicEstimator,
    HoldoutEstimator,
    LCE,
    MCE,
)
from repro.core.statistics import gold_standard_compatibility
from repro.eval.experiment import run_experiment
from repro.eval.metrics import accuracy, compatibility_l2, macro_accuracy
from repro.eval.seeding import stratified_seed_indices, stratified_seed_labels
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.generator import generate_graph
from repro.graph.graph import Graph
from repro.graph.operators import GraphOperators
from repro.propagation.engine import (
    ESTIMATORS,
    PROPAGATORS,
    PropagationResult,
    Propagator,
    get_estimator,
    get_propagator,
    propagator_names,
    register_estimator,
    register_propagator,
)
from repro.propagation.linbp import linbp, propagate_and_label

from repro.runner import (
    ExecutionReport,
    GridSpec,
    ResultStore,
    RunSpec,
    execute_grid,
)
from repro.serve import (
    InferenceService,
    MicroBatcher,
)
from repro.stream import (
    GraphDelta,
    IncrementalPropagator,
    StreamingSession,
    read_delta_stream,
    replay_events,
    synthesize_delta_stream,
)

__version__ = "1.4.0"

__all__ = [
    "DCE",
    "DCEr",
    "ESTIMATORS",
    "ExecutionReport",
    "GoldStandard",
    "Graph",
    "GraphDelta",
    "GraphOperators",
    "GridSpec",
    "HeuristicEstimator",
    "HoldoutEstimator",
    "IncrementalPropagator",
    "InferenceService",
    "LCE",
    "MCE",
    "MicroBatcher",
    "PROPAGATORS",
    "PropagationResult",
    "Propagator",
    "ResultStore",
    "RunSpec",
    "StreamingSession",
    "__version__",
    "accuracy",
    "compatibility_l2",
    "dataset_names",
    "execute_grid",
    "generate_graph",
    "get_estimator",
    "get_propagator",
    "gold_standard_compatibility",
    "homophily_compatibility",
    "linbp",
    "load_dataset",
    "macro_accuracy",
    "propagate_and_label",
    "propagator_names",
    "random_compatibility",
    "read_delta_stream",
    "register_estimator",
    "register_propagator",
    "replay_events",
    "run_experiment",
    "skew_compatibility",
    "stratified_seed_indices",
    "stratified_seed_labels",
    "synthesize_delta_stream",
]
