"""Optimization wrappers over the free parameters of a compatibility matrix.

The estimators hand this module a scalar energy (and optionally an analytic
gradient) defined over the ``k* = k(k-1)/2`` free parameters and receive the
optimized full matrix back.  Two scipy optimizers are exposed, mirroring the
paper's setup:

* SLSQP (with the analytic gradient when available) for LCE/MCE/DCE/DCEr,
* Nelder-Mead for the Holdout baseline, whose accuracy objective is a step
  function and therefore gradient-free territory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import optimize

from repro.core.compatibility import (
    free_parameter_count,
    uniform_vector,
    vector_to_matrix,
)

__all__ = ["OptimizationOutcome", "minimize_free_parameters", "best_outcome"]


@dataclass
class OptimizationOutcome:
    """Result of one optimization run over the free parameters.

    Attributes
    ----------
    parameters:
        Optimized free-parameter vector ``h``.
    matrix:
        Full ``k x k`` compatibility matrix reconstructed from ``parameters``.
    energy:
        Final objective value.
    n_iterations:
        Iterations reported by the scipy optimizer.
    converged:
        Whether scipy reported success.
    initial_parameters:
        Starting point, kept for diagnostics of the restart strategy.
    """

    parameters: np.ndarray
    matrix: np.ndarray
    energy: float
    n_iterations: int
    converged: bool
    initial_parameters: np.ndarray = field(default_factory=lambda: np.array([]))


def minimize_free_parameters(
    objective: Callable[[np.ndarray], float],
    n_classes: int,
    gradient: Callable[[np.ndarray], np.ndarray] | None = None,
    initial: np.ndarray | None = None,
    method: str = "SLSQP",
    bounds: tuple[float, float] | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
) -> OptimizationOutcome:
    """Minimize ``objective(h)`` over the ``k*`` free parameters.

    Parameters
    ----------
    objective:
        Scalar function of the free-parameter vector.
    n_classes:
        Number of classes ``k`` (defines the parameter dimension).
    gradient:
        Optional analytic gradient; strongly recommended for DCE (Prop 4.7).
    initial:
        Starting point; defaults to the uninformative all-``1/k`` vector.
    method:
        Any scipy method name; the library uses ``"SLSQP"`` and
        ``"Nelder-Mead"``.
    bounds:
        Optional ``(low, high)`` box applied to every free parameter.
    """
    k_star = free_parameter_count(n_classes)
    if initial is None:
        initial = uniform_vector(n_classes)
    initial = np.asarray(initial, dtype=np.float64).ravel()
    if initial.shape[0] != k_star:
        raise ValueError(
            f"initial point has {initial.shape[0]} entries, expected {k_star}"
        )
    scipy_bounds = None
    if bounds is not None:
        scipy_bounds = [bounds] * k_star

    options = {"maxiter": max_iterations}
    jac = gradient if method not in ("Nelder-Mead", "Powell") else None
    result = optimize.minimize(
        objective,
        initial,
        jac=jac,
        method=method,
        bounds=scipy_bounds,
        tol=tolerance,
        options=options,
    )
    parameters = np.asarray(result.x, dtype=np.float64)
    return OptimizationOutcome(
        parameters=parameters,
        matrix=vector_to_matrix(parameters, n_classes),
        energy=float(result.fun),
        n_iterations=int(getattr(result, "nit", 0) or 0),
        converged=bool(result.success),
        initial_parameters=initial,
    )


def best_outcome(outcomes: Sequence[OptimizationOutcome]) -> OptimizationOutcome:
    """Return the outcome with the lowest final energy (DCEr's selection rule)."""
    if not outcomes:
        raise ValueError("no optimization outcomes to choose from")
    return min(outcomes, key=lambda outcome: outcome.energy)
