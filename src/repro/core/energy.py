"""Energy functions and analytic gradients for compatibility estimation.

Each estimator in the paper minimizes a different energy over the free
parameters ``h`` of the compatibility matrix (Section 4):

* LCE  — ``E(H) = ||X - W X H||^2``                       (Eq. 8)
* MCE  — ``E(H) = ||H - P̂||^2``                           (Eq. 12)
* DCE  — ``E(H) = sum_l w_l ||H^l - P̂^(l)||^2``           (Eq. 13 / 14)

The DCE gradient with respect to the *full* matrix is Proposition 4.7's

    ``G = 2 sum_l w_l ( l H^(2l-1) - sum_{r=0}^{l-1} H^r P̂^(l) H^(l-r-1) )``

and the gradient with respect to a free parameter is the entry-wise dot
product of ``G`` with that parameter's structure matrix ``S`` — the matrix
``∂H/∂h_p`` that records how the dependent last row/column move when a free
entry moves.  All of this operates on ``k x k`` matrices only, which is why
the optimization step is independent of the graph size.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import free_parameter_indices, vector_to_matrix
from repro.utils.validation import check_positive, check_square

__all__ = [
    "dce_weights",
    "matrix_powers",
    "dce_energy",
    "dce_matrix_gradient",
    "structure_matrix",
    "free_parameter_gradient",
    "dce_free_gradient",
    "mce_energy",
    "mce_matrix_gradient",
    "LCETerms",
    "lce_terms",
    "lce_energy",
    "lce_matrix_gradient",
]


# --------------------------------------------------------------------------- DCE
def dce_weights(max_length: int, scaling: float) -> np.ndarray:
    """Geometric weight vector ``w_l = scaling^(l-1)`` (the paper's lambda).

    ``scaling`` is the single hyperparameter of the whole framework; larger
    values emphasize longer (more numerous but individually weaker) paths,
    which is what rescues estimation in the extremely sparse-label regime.
    """
    check_positive(max_length, "max_length")
    if scaling <= 0:
        raise ValueError(f"scaling factor must be positive, got {scaling}")
    return np.asarray([scaling**exponent for exponent in range(max_length)])


def matrix_powers(matrix: np.ndarray, max_power: int) -> list[np.ndarray]:
    """``[H, H^2, ..., H^max_power]`` computed incrementally."""
    matrix = check_square(matrix, "matrix")
    check_positive(max_power, "max_power")
    powers = [matrix]
    for _ in range(1, max_power):
        powers.append(powers[-1] @ matrix)
    return powers


def dce_energy(
    matrix: np.ndarray, statistics: list[np.ndarray], weights: np.ndarray
) -> float:
    """Distance-smoothed energy ``sum_l w_l ||H^l - P̂^(l)||^2`` (Eq. 13/14)."""
    matrix = check_square(matrix, "compatibility")
    if len(statistics) != len(weights):
        raise ValueError(
            f"got {len(statistics)} statistics matrices but {len(weights)} weights"
        )
    powers = matrix_powers(matrix, len(statistics))
    total = 0.0
    for weight, power, observed in zip(weights, powers, statistics):
        difference = power - observed
        total += float(weight) * float(np.sum(difference * difference))
    return total


def dce_matrix_gradient(
    matrix: np.ndarray, statistics: list[np.ndarray], weights: np.ndarray
) -> np.ndarray:
    """Gradient of the DCE energy with respect to the full matrix (Prop. 4.7).

    Uses the general (transpose-aware) form so it stays correct even if the
    iterate drifts slightly off the symmetric manifold numerically:
    ``d||H^l - Z||^2 / dH = 2 sum_r (H^T)^r (H^l - Z) (H^T)^(l-1-r)``.
    """
    matrix = check_square(matrix, "compatibility")
    n_terms = len(statistics)
    if n_terms != len(weights):
        raise ValueError("statistics and weights must have equal length")
    powers = matrix_powers(matrix, n_terms)
    transpose_powers = matrix_powers(matrix.T, n_terms) if n_terms > 1 else [matrix.T]
    identity = np.eye(matrix.shape[0])

    def transpose_power(exponent: int) -> np.ndarray:
        if exponent == 0:
            return identity
        return transpose_powers[exponent - 1]

    gradient = np.zeros_like(matrix)
    for length_index, (weight, observed) in enumerate(zip(weights, statistics)):
        length = length_index + 1
        residual = powers[length_index] - observed
        term = np.zeros_like(matrix)
        for r in range(length):
            term += transpose_power(r) @ residual @ transpose_power(length - 1 - r)
        gradient += 2.0 * float(weight) * term
    return gradient


# ----------------------------------------------------------- constrained gradient
def structure_matrix(n_classes: int, row: int, col: int) -> np.ndarray:
    """``∂H/∂H[row, col]`` for a free parameter of the Eq. 6 parametrization.

    ``row >= col`` and both lie in the leading ``(k-1) x (k-1)`` block.  The
    returned matrix has +1 at the parameter position (and its mirror), -1 on
    the dependent entries of the last row/column and +2 (or +1 for diagonal
    parameters) at the bottom-right corner (Prop. 4.7).
    """
    if not (0 <= col <= row < n_classes - 1):
        raise ValueError(
            f"({row}, {col}) is not a free-parameter position for k={n_classes}"
        )
    last = n_classes - 1
    structure = np.zeros((n_classes, n_classes), dtype=np.float64)
    if row == col:
        structure[row, col] = 1.0
        structure[row, last] -= 1.0
        structure[last, col] -= 1.0
        structure[last, last] += 1.0
    else:
        structure[row, col] = 1.0
        structure[col, row] = 1.0
        structure[row, last] -= 1.0
        structure[last, row] -= 1.0
        structure[col, last] -= 1.0
        structure[last, col] -= 1.0
        structure[last, last] += 2.0
    return structure


def free_parameter_gradient(matrix_gradient: np.ndarray, n_classes: int) -> np.ndarray:
    """Chain the full-matrix gradient through the Eq. 6 parametrization.

    For each free parameter ``p`` at position ``(row, col)`` the derivative
    is ``<S_p, G> = sum_ab S_p[a, b] * G[a, b]``; this closed form avoids
    materializing the structure matrices.
    """
    matrix_gradient = check_square(matrix_gradient, "matrix_gradient")
    last = n_classes - 1
    gradient = np.empty(len(free_parameter_indices(n_classes)))
    for index, (row, col) in enumerate(free_parameter_indices(n_classes)):
        if row == col:
            value = (
                matrix_gradient[row, col]
                - matrix_gradient[row, last]
                - matrix_gradient[last, col]
                + matrix_gradient[last, last]
            )
        else:
            value = (
                matrix_gradient[row, col]
                + matrix_gradient[col, row]
                - matrix_gradient[row, last]
                - matrix_gradient[last, row]
                - matrix_gradient[col, last]
                - matrix_gradient[last, col]
                + 2.0 * matrix_gradient[last, last]
            )
        gradient[index] = value
    return gradient


def dce_free_gradient(
    parameters: np.ndarray,
    n_classes: int,
    statistics: list[np.ndarray],
    weights: np.ndarray,
) -> np.ndarray:
    """DCE gradient with respect to the free-parameter vector ``h``."""
    matrix = vector_to_matrix(parameters, n_classes)
    matrix_gradient = dce_matrix_gradient(matrix, statistics, weights)
    return free_parameter_gradient(matrix_gradient, n_classes)


# --------------------------------------------------------------------------- MCE
def mce_energy(matrix: np.ndarray, observed: np.ndarray) -> float:
    """Myopic energy ``||H - P̂||^2`` (Eq. 12)."""
    difference = np.asarray(matrix) - np.asarray(observed)
    return float(np.sum(difference * difference))


def mce_matrix_gradient(matrix: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """Gradient of the myopic energy with respect to the full matrix."""
    return 2.0 * (np.asarray(matrix, dtype=np.float64) - np.asarray(observed))


# --------------------------------------------------------------------------- LCE
class LCETerms:
    """Precomputed sufficient statistics of the LCE energy (Eq. 8).

    With ``A = W X`` (an ``n x k`` matrix computed once),

        ``||X - A H||^2 = ||X||^2 - 2 tr(H^T A^T X) + tr(H^T A^T A H)``

    so only the two ``k x k`` matrices ``A^T A`` and ``A^T X`` and the scalar
    ``||X||^2`` are needed during optimization — the same "summarize first,
    optimize later" trick DCE uses, applied to the convex LCE objective.
    """

    def __init__(self, gram: np.ndarray, cross: np.ndarray, label_norm: float) -> None:
        self.gram = np.asarray(gram, dtype=np.float64)
        self.cross = np.asarray(cross, dtype=np.float64)
        self.label_norm = float(label_norm)

    @property
    def n_classes(self) -> int:
        """Number of classes of the underlying problem."""
        return self.gram.shape[0]


def lce_terms(adjacency, labels_matrix) -> LCETerms:
    """Build the :class:`LCETerms` summary from the graph and seed labels."""
    dense_labels = (
        labels_matrix.toarray() if sp.issparse(labels_matrix) else np.asarray(labels_matrix)
    ).astype(np.float64)
    propagated = np.asarray(adjacency @ dense_labels)
    gram = propagated.T @ propagated
    cross = propagated.T @ dense_labels
    label_norm = float(np.sum(dense_labels * dense_labels))
    return LCETerms(gram=gram, cross=cross, label_norm=label_norm)


def lce_energy(matrix: np.ndarray, terms: LCETerms) -> float:
    """LCE energy ``||X - W X H||^2`` evaluated from precomputed terms."""
    matrix = check_square(matrix, "compatibility")
    quadratic = float(np.trace(matrix.T @ terms.gram @ matrix))
    linear = float(np.trace(matrix.T @ terms.cross))
    return terms.label_norm - 2.0 * linear + quadratic


def lce_matrix_gradient(matrix: np.ndarray, terms: LCETerms) -> np.ndarray:
    """Gradient of the LCE energy with respect to the full matrix."""
    matrix = check_square(matrix, "compatibility")
    return 2.0 * (terms.gram @ matrix - terms.cross)
