"""Compatibility matrices and their free-parameter parametrization (Eq. 6).

A compatibility matrix ``H`` is a symmetric doubly-stochastic ``k x k``
matrix; entry ``H[c, d]`` is the relative frequency with which a node of
class ``c`` neighbors a node of class ``d``.  Symmetry plus stochasticity
leave ``k* = k(k-1)/2`` degrees of freedom, and all estimators in
:mod:`repro.core.estimators` optimize over exactly these ``k*`` parameters.

The parametrization follows the paper's Eq. 6: the free parameters are the
entries ``H[i, j]`` with ``i >= j`` restricted to the leading
``(k-1) x (k-1)`` block (row-major over the lower triangle of that block);
the last row and column are recovered from the stochasticity constraints.
"""

from __future__ import annotations

import numpy as np

from repro.utils.matrix import is_doubly_stochastic, is_symmetric, sinkhorn_projection
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_square

__all__ = [
    "free_parameter_count",
    "free_parameter_indices",
    "vector_to_matrix",
    "matrix_to_vector",
    "uniform_vector",
    "validate_compatibility",
    "skew_compatibility",
    "homophily_compatibility",
    "random_compatibility",
    "restart_initial_points",
    "heuristic_two_level",
]


def free_parameter_count(n_classes: int) -> int:
    """Number of free parameters ``k* = k(k-1)/2`` of a compatibility matrix."""
    check_positive(n_classes, "n_classes")
    return n_classes * (n_classes - 1) // 2


def free_parameter_indices(n_classes: int) -> list[tuple[int, int]]:
    """Row-major ``(i, j)`` positions of the free parameters in ``H``.

    Matches the paper's layout: the lower triangle (including the diagonal)
    of the leading ``(k-1) x (k-1)`` block, i.e.
    ``H[0,0], H[1,0], H[1,1], H[2,0], H[2,1], H[2,2], ...``.
    """
    return [
        (row, col)
        for row in range(n_classes - 1)
        for col in range(row + 1)
    ]


def uniform_vector(n_classes: int) -> np.ndarray:
    """The all-``1/k`` parameter vector the optimizations start from."""
    return np.full(free_parameter_count(n_classes), 1.0 / n_classes)


def vector_to_matrix(parameters: np.ndarray, n_classes: int) -> np.ndarray:
    """Reconstruct the full ``k x k`` matrix ``H`` from its free parameters.

    Implements Eq. 6: free entries fill the leading block symmetrically, the
    last column/row absorb the stochasticity slack, and the bottom-right
    corner is ``2 - k + sum of the leading block``.
    """
    parameters = np.asarray(parameters, dtype=np.float64).ravel()
    expected = free_parameter_count(n_classes)
    if parameters.shape[0] != expected:
        raise ValueError(
            f"expected {expected} free parameters for k={n_classes}, "
            f"got {parameters.shape[0]}"
        )
    matrix = np.zeros((n_classes, n_classes), dtype=np.float64)
    for value, (row, col) in zip(parameters, free_parameter_indices(n_classes)):
        matrix[row, col] = value
        matrix[col, row] = value
    last = n_classes - 1
    leading = matrix[:last, :last]
    matrix[:last, last] = 1.0 - leading.sum(axis=1)
    matrix[last, :last] = 1.0 - leading.sum(axis=0)
    matrix[last, last] = 2.0 - n_classes + leading.sum()
    return matrix


def matrix_to_vector(matrix: np.ndarray) -> np.ndarray:
    """Extract the free-parameter vector ``h`` from a full matrix ``H``."""
    matrix = check_square(matrix, "compatibility")
    n_classes = matrix.shape[0]
    return np.array(
        [matrix[row, col] for row, col in free_parameter_indices(n_classes)]
    )


def validate_compatibility(
    matrix: np.ndarray, require_nonnegative: bool = True, tol: float = 1e-6
) -> np.ndarray:
    """Check that ``matrix`` is a valid compatibility matrix and return it.

    Raises ``ValueError`` if the matrix is not square, not symmetric, not
    doubly stochastic (within ``tol``), or has negative entries (unless
    ``require_nonnegative`` is False — estimated matrices can dip slightly
    below zero before projection).
    """
    matrix = check_square(matrix, "compatibility")
    if not is_symmetric(matrix, tol=tol):
        raise ValueError("compatibility matrix must be symmetric")
    if not is_doubly_stochastic(matrix, tol=tol):
        raise ValueError("compatibility matrix must be doubly stochastic")
    if require_nonnegative and matrix.min() < -tol:
        raise ValueError("compatibility matrix must be non-negative")
    return matrix


def skew_compatibility(n_classes: int, h: float = 3.0) -> np.ndarray:
    """The paper's skew-``h`` heterophilous compatibility matrix.

    For ``k = 3`` this reproduces the paper's example exactly:
    ``H = [[1, h, 1], [h, 1, 1], [1, 1, h]] / (2 + h)``, i.e. classes 0 and 1
    attract each other while class 2 is homophilous.  For general ``k`` we
    keep the same construction: classes are paired ``(0,1), (2,3), ...`` with
    affinity ``h`` (an odd trailing class is homophilous with affinity
    ``h``), every other entry is 1, and rows are normalized by ``h + k - 1``
    which makes the matrix symmetric and doubly stochastic.
    """
    check_positive(n_classes, "n_classes")
    check_positive(h, "h")
    matrix = np.ones((n_classes, n_classes), dtype=np.float64)
    for start in range(0, n_classes - 1, 2):
        matrix[start, start + 1] = h
        matrix[start + 1, start] = h
    if n_classes % 2 == 1:
        matrix[n_classes - 1, n_classes - 1] = h
    return matrix / (h + n_classes - 1)


def homophily_compatibility(n_classes: int, h: float = 3.0) -> np.ndarray:
    """Assortative compatibility matrix: affinity ``h`` on the diagonal."""
    check_positive(n_classes, "n_classes")
    check_positive(h, "h")
    matrix = np.ones((n_classes, n_classes), dtype=np.float64)
    np.fill_diagonal(matrix, h)
    return matrix / (h + n_classes - 1)


def random_compatibility(n_classes: int, seed=None, concentration: float = 1.0) -> np.ndarray:
    """Random symmetric doubly-stochastic matrix (for tests and ablations).

    Draws a symmetric non-negative matrix with Gamma-distributed entries and
    projects it onto the doubly-stochastic set with Sinkhorn scaling, then
    symmetrizes.  Larger ``concentration`` gives flatter matrices.
    """
    rng = ensure_rng(seed)
    raw = rng.gamma(shape=concentration, scale=1.0, size=(n_classes, n_classes)) + 1e-6
    raw = 0.5 * (raw + raw.T)
    scaled = sinkhorn_projection(raw)
    # Sinkhorn on a symmetric matrix converges to a symmetric limit, but the
    # alternating row/column sweeps can leave a tiny asymmetry; remove it.
    scaled = 0.5 * (scaled + scaled.T)
    return sinkhorn_projection(scaled)


def restart_initial_points(
    n_classes: int,
    n_restarts: int,
    delta: float | None = None,
    seed=None,
    include_uniform: bool = True,
) -> np.ndarray:
    """Initial parameter vectors for DCE with restarts (Section 4.8).

    The paper restarts from within the ``2^{k*}`` hyper-quadrants around the
    uninformative point ``1/k`` (each free parameter perturbed by ``±delta``
    with ``delta < 1/k^2``).  For small ``k`` we enumerate the quadrants; for
    larger ``k`` (where ``2^{k*}`` explodes) we sample sign patterns at
    random.  The uninformative all-``1/k`` point is always included first
    when ``include_uniform`` is set.
    """
    check_positive(n_restarts, "n_restarts")
    rng = ensure_rng(seed)
    k_star = free_parameter_count(n_classes)
    if delta is None:
        delta = 0.9 / (n_classes**2)
    base = uniform_vector(n_classes)
    points = []
    if include_uniform:
        points.append(base.copy())
    remaining = n_restarts - len(points)
    if remaining <= 0:
        return np.asarray(points[:n_restarts])
    if k_star <= 16 and 2**k_star <= 4 * remaining:
        signs = np.array(
            [[1 if (index >> bit) & 1 else -1 for bit in range(k_star)]
             for index in range(2**k_star)],
            dtype=np.float64,
        )
        rng.shuffle(signs)
    else:
        signs = rng.choice([-1.0, 1.0], size=(remaining, k_star))
    for row in signs[:remaining]:
        points.append(base + delta * row)
    return np.asarray(points)


def heuristic_two_level(
    pattern: np.ndarray, high: float | None = None, low: float | None = None
) -> np.ndarray:
    """The prior-work heuristic: approximate ``H`` with two values (App. E.1).

    ``pattern`` is a boolean/0-1 ``k x k`` matrix marking which entries are
    "high"; the heuristic assigns value ``high`` there and ``low`` elsewhere,
    then row-normalizes.  When ``high``/``low`` are omitted a generic 3:1
    ratio is used, mimicking "guessing the positions but not the magnitudes".
    """
    pattern = check_square(np.asarray(pattern, dtype=bool).astype(float), "pattern")
    n_classes = pattern.shape[0]
    if high is None:
        high = 3.0
    if low is None:
        low = 1.0
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    matrix = np.where(pattern > 0, high, low)
    matrix = 0.5 * (matrix + matrix.T)
    return sinkhorn_projection(matrix)
