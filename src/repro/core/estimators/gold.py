"""Gold-standard compatibilities measured on the fully labeled graph.

Not an estimator in the statistical sense — it *peeks* at every label — but
it defines the ceiling every real estimator is compared against throughout
the paper's evaluation (the "GS" curves).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.estimators.base import BaseEstimator
from repro.core.statistics import gold_standard_compatibility
from repro.graph.graph import Graph

__all__ = ["GoldStandard"]


class GoldStandard(BaseEstimator):
    """Measure ``H`` from the complete ground-truth labeling.

    Parameters
    ----------
    project_doubly_stochastic:
        Additionally project the row-normalized frequency matrix onto the
        symmetric doubly-stochastic set (useful when planting the matrix in
        the synthetic generator; the paper's GS curves use the plain
        row-normalized frequencies).
    """

    method_name = "GS"

    def __init__(self, project_doubly_stochastic: bool = False) -> None:
        self.project_doubly_stochastic = project_doubly_stochastic

    @property
    def requires_seed_labels(self) -> bool:
        return False

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        compatibility = gold_standard_compatibility(
            graph, project_doubly_stochastic=self.project_doubly_stochastic
        )
        return compatibility, None, {"source": "full ground-truth labeling"}
