"""Two-level heuristic compatibility matrices (Appendix E.1).

Prior work side-steps estimation by guessing ``H`` with just two values: a
"high" value at positions a domain expert believes are compatible and a
"low" value elsewhere.  The paper shows this works only when the true matrix
really is close to two-valued (MovieLens) and fails badly otherwise
(Prop-37).  We reproduce the heuristic faithfully: the *positions* of the
high entries are read off the gold-standard matrix (the most charitable
assumption possible for the heuristic), but the magnitudes are not.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import heuristic_two_level
from repro.core.estimators.base import BaseEstimator
from repro.core.statistics import gold_standard_compatibility
from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = ["HeuristicEstimator"]


class HeuristicEstimator(BaseEstimator):
    """Approximate ``H`` with a high/low two-level matrix.

    Parameters
    ----------
    ratio:
        Ratio between the high and the low value (the paper's heuristics use
        a fixed ratio chosen for convergence, not learned from data).
    pattern:
        Optional explicit boolean ``k x k`` matrix marking the "high"
        positions.  When omitted, the pattern is derived by thresholding the
        gold-standard matrix at the midpoint of its entry range — i.e. we
        grant the heuristic a perfect guess of *where* the large entries sit
        (the most charitable reading of "given by domain experts").
    """

    method_name = "Heuristic"

    def __init__(self, ratio: float = 3.0, pattern: np.ndarray | None = None) -> None:
        check_positive(ratio, "ratio")
        if ratio <= 1.0:
            raise ValueError(f"ratio must exceed 1, got {ratio}")
        self.ratio = ratio
        self.pattern = None if pattern is None else np.asarray(pattern, dtype=bool)

    @property
    def requires_seed_labels(self) -> bool:
        return False

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        if self.pattern is not None:
            pattern = self.pattern
        else:
            gold = gold_standard_compatibility(graph)
            pattern = gold > 0.5 * (gold.min() + gold.max())
        compatibility = heuristic_two_level(pattern, high=self.ratio, low=1.0)
        details = {"pattern": pattern, "ratio": self.ratio}
        return compatibility, None, details
