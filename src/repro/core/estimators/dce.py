"""Distant Compatibility Estimation, with and without restarts (Section 4.4-4.8).

DCE is the paper's headline method.  Step one summarizes the partially
labeled graph into the normalized non-backtracking path statistics
``P̂^(l)_NB`` for ``l = 1 .. l_max`` (Algorithm 4.4, O(m k l_max)); step two
minimizes the distance-smoothed energy

    ``E(H) = sum_l  w_l ||H^l - P̂^(l)_NB||^2``,   ``w_l = lambda^(l-1)``

over the ``k*`` free parameters of ``H`` with the analytic gradient of
Proposition 4.7.  The objective is non-convex for ``l_max > 1``; DCEr
restarts the optimization from points scattered around the uninformative
``1/k`` matrix (Section 4.8) and keeps the lowest-energy solution.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import restart_initial_points, uniform_vector, vector_to_matrix
from repro.core.energy import dce_energy, dce_free_gradient, dce_weights
from repro.core.estimators.base import BaseEstimator
from repro.core.optimizer import best_outcome, minimize_free_parameters
from repro.core.statistics import NORMALIZATION_VARIANTS, observed_statistics
from repro.graph.graph import Graph
from repro.utils.validation import check_positive

__all__ = ["DCE", "DCEr"]


class DCE(BaseEstimator):
    """Distant compatibility estimation (single optimization run).

    Parameters
    ----------
    max_length:
        Maximal path length ``l_max`` (paper recommends 5).
    scaling:
        The single hyperparameter lambda; weights are ``lambda^(l-1)``
        (paper recommends 10 in the sparse regime).
    variant:
        Normalization variant for the observed statistics (default 1).
    non_backtracking:
        Use NB path statistics (the consistent estimator of Thm 4.1).
        Setting this to False reproduces the biased plain-path ablation.
    bounds:
        Optional box constraints on the free parameters.
    initial:
        Optional explicit starting point (free-parameter vector); defaults
        to the uninformative all-``1/k`` point.
    """

    method_name = "DCE"

    def __init__(
        self,
        max_length: int = 5,
        scaling: float = 10.0,
        variant: int = 1,
        non_backtracking: bool = True,
        bounds: tuple[float, float] | None = None,
        initial: np.ndarray | None = None,
        max_iterations: int = 500,
    ) -> None:
        check_positive(max_length, "max_length")
        check_positive(scaling, "scaling")
        if variant not in NORMALIZATION_VARIANTS:
            raise ValueError(
                f"variant must be one of {NORMALIZATION_VARIANTS}, got {variant}"
            )
        self.max_length = max_length
        self.scaling = scaling
        self.variant = variant
        self.non_backtracking = non_backtracking
        self.bounds = bounds
        self.initial = initial
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ hooks
    def _summarize(
        self, graph: Graph, explicit_beliefs: sp.csr_matrix
    ) -> list[np.ndarray]:
        """Step (1): compute the factorized graph statistics."""
        return observed_statistics(
            graph.adjacency,
            explicit_beliefs,
            max_length=self.max_length,
            variant=self.variant,
            non_backtracking=self.non_backtracking,
        )

    def _initial_points(self, n_classes: int) -> np.ndarray:
        if self.initial is not None:
            return np.asarray([self.initial], dtype=np.float64)
        return np.asarray([uniform_vector(n_classes)])

    def _optimize(
        self, statistics: list[np.ndarray], n_classes: int
    ) -> tuple[np.ndarray, float, dict]:
        """Step (2): minimize the distance-smoothed energy over ``h``."""
        weights = dce_weights(self.max_length, self.scaling)

        def objective(parameters: np.ndarray) -> float:
            return dce_energy(vector_to_matrix(parameters, n_classes), statistics, weights)

        def gradient(parameters: np.ndarray) -> np.ndarray:
            return dce_free_gradient(parameters, n_classes, statistics, weights)

        outcomes = []
        for start in self._initial_points(n_classes):
            outcomes.append(
                minimize_free_parameters(
                    objective,
                    n_classes,
                    gradient=gradient,
                    initial=start,
                    method="SLSQP",
                    bounds=self.bounds,
                    max_iterations=self.max_iterations,
                )
            )
        winner = best_outcome(outcomes)
        details = {
            "restart_energies": [outcome.energy for outcome in outcomes],
            "n_restarts": len(outcomes),
            "converged": winner.converged,
            "weights": weights,
        }
        return winner.matrix, winner.energy, details

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        summarize_start = time.perf_counter()
        statistics = self._summarize(graph, explicit_beliefs)
        summarize_seconds = time.perf_counter() - summarize_start
        optimize_start = time.perf_counter()
        compatibility, energy, details = self._optimize(statistics, graph.n_classes)
        optimize_seconds = time.perf_counter() - optimize_start
        details.update(
            {
                "observed_statistics": statistics,
                "summarization_seconds": summarize_seconds,
                "optimization_seconds": optimize_seconds,
                "max_length": self.max_length,
                "scaling": self.scaling,
                "non_backtracking": self.non_backtracking,
            }
        )
        return compatibility, energy, details


class DCEr(DCE):
    """DCE with random restarts (the paper's recommended estimator).

    Parameters
    ----------
    n_restarts:
        Number of optimization starts (paper uses 10, Fig. 6h).
    restart_delta:
        Perturbation added per free parameter when scattering starting points
        over the hyper-quadrants around ``1/k`` (defaults to just under
        ``1/k^2`` as the paper suggests).
    seed:
        Random seed controlling the restart points for reproducibility.
    """

    method_name = "DCEr"

    def __init__(
        self,
        max_length: int = 5,
        scaling: float = 10.0,
        variant: int = 1,
        non_backtracking: bool = True,
        n_restarts: int = 10,
        restart_delta: float | None = None,
        seed=None,
        bounds: tuple[float, float] | None = None,
        max_iterations: int = 500,
    ) -> None:
        super().__init__(
            max_length=max_length,
            scaling=scaling,
            variant=variant,
            non_backtracking=non_backtracking,
            bounds=bounds,
            max_iterations=max_iterations,
        )
        check_positive(n_restarts, "n_restarts")
        self.n_restarts = n_restarts
        self.restart_delta = restart_delta
        self.seed = seed

    def _initial_points(self, n_classes: int) -> np.ndarray:
        return restart_initial_points(
            n_classes,
            self.n_restarts,
            delta=self.restart_delta,
            seed=self.seed,
            include_uniform=True,
        )
