"""Shared estimator interface.

Every estimator answers the same question — "given a graph and a few seed
labels, what is the compatibility matrix ``H``?" — through the same
scikit-learn-flavoured API:

    result = Estimator(...).fit(graph, seed_labels)
    result.compatibility   # the estimated k x k matrix

``seed_labels`` is always a full-length vector with ``-1`` marking unlabeled
nodes, which is what :mod:`repro.eval.seeding` produces.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.graph.graph import Graph, one_hot_labels
from repro.utils.validation import check_labels

__all__ = ["EstimationResult", "BaseEstimator"]


@dataclass
class EstimationResult:
    """Outcome of a compatibility estimation.

    Attributes
    ----------
    compatibility:
        Estimated ``k x k`` compatibility matrix.
    method:
        Name of the estimator that produced it (e.g. ``"DCEr"``).
    elapsed_seconds:
        Wall-clock time of the whole ``fit`` call, including graph
        summarization — the quantity reported in the paper's Fig. 3b/6k.
    energy:
        Final value of the estimator's objective, when it has one.
    n_classes:
        Number of classes ``k``.
    details:
        Estimator-specific extras (restart energies, per-step timings, the
        observed statistics matrices, ...), useful for the benchmark harness.
    """

    compatibility: np.ndarray
    method: str
    elapsed_seconds: float
    n_classes: int
    energy: float | None = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.compatibility = np.asarray(self.compatibility, dtype=np.float64)


class BaseEstimator(abc.ABC):
    """Abstract base class for all compatibility estimators."""

    method_name = "base"

    def fit(self, graph: Graph, seed_labels: np.ndarray) -> EstimationResult:
        """Estimate ``H`` from ``graph`` and the partial labeling ``seed_labels``.

        Validates inputs, times the run, and delegates the actual work to the
        subclass hook :meth:`_estimate`.
        """
        if graph.n_classes is None:
            raise ValueError("graph must know its number of classes before estimation")
        seed_labels = check_labels(
            seed_labels, n_nodes=graph.n_nodes, n_classes=graph.n_classes
        )
        if np.all(seed_labels < 0) and self.requires_seed_labels:
            raise ValueError(
                f"{self.method_name} needs at least one labeled seed node"
            )
        explicit = one_hot_labels(seed_labels, graph.n_classes)
        start = time.perf_counter()
        with obs.span("estimator.fit", method=self.method_name):
            compatibility, energy, details = self._estimate(
                graph, seed_labels, explicit
            )
        elapsed = time.perf_counter() - start
        if obs.enabled():
            obs.metrics().histogram(
                "repro_estimator_fit_seconds",
                "Wall time of one compatibility-estimator fit.",
                method=self.method_name,
            ).observe(elapsed)
        return EstimationResult(
            compatibility=compatibility,
            method=self.method_name,
            elapsed_seconds=elapsed,
            n_classes=graph.n_classes,
            energy=energy,
            details=details,
        )

    @property
    def requires_seed_labels(self) -> bool:
        """Whether the estimator needs at least one labeled node (most do)."""
        return True

    @abc.abstractmethod
    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        """Return ``(compatibility, final_energy_or_None, details_dict)``."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{self.__class__.__name__}()"
