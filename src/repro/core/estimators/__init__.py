"""Compatibility estimators: Holdout, LCE, MCE, DCE, DCEr, heuristics."""

from repro.core.estimators.base import BaseEstimator, EstimationResult
from repro.core.estimators.dce import DCE, DCEr
from repro.core.estimators.gold import GoldStandard
from repro.core.estimators.heuristic import HeuristicEstimator
from repro.core.estimators.holdout import HoldoutEstimator
from repro.core.estimators.lce import LCE
from repro.core.estimators.mce import MCE

__all__ = [
    "BaseEstimator",
    "DCE",
    "DCEr",
    "EstimationResult",
    "GoldStandard",
    "HeuristicEstimator",
    "HoldoutEstimator",
    "LCE",
    "MCE",
]
