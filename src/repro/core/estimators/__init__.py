"""Compatibility estimators: Holdout, LCE, MCE, DCE, DCEr, heuristics.

Every estimator class is also registered (by its ``method_name``) in the
``ESTIMATORS`` registry of :mod:`repro.propagation.engine`, so experiments
and tools can instantiate estimators by name with
:func:`repro.propagation.engine.get_estimator`.
"""

from repro.core.estimators.base import BaseEstimator, EstimationResult
from repro.core.estimators.dce import DCE, DCEr
from repro.core.estimators.gold import GoldStandard
from repro.core.estimators.heuristic import HeuristicEstimator
from repro.core.estimators.holdout import HoldoutEstimator
from repro.core.estimators.lce import LCE
from repro.core.estimators.mce import MCE
from repro.propagation.engine import ESTIMATORS, register_estimator

for _estimator_class in (
    DCE,
    DCEr,
    GoldStandard,
    HeuristicEstimator,
    HoldoutEstimator,
    LCE,
    MCE,
):
    if _estimator_class.method_name not in ESTIMATORS:
        register_estimator()(_estimator_class)
del _estimator_class

__all__ = [
    "BaseEstimator",
    "DCE",
    "DCEr",
    "EstimationResult",
    "GoldStandard",
    "HeuristicEstimator",
    "HoldoutEstimator",
    "LCE",
    "MCE",
]
