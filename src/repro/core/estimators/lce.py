"""Linear Compatibility Estimation (LCE), Section 4.2.

LCE minimizes the LinBP energy with the final beliefs replaced by the few
available seed labels: ``E(H) = ||X - W X H||^2`` (Eq. 8).  The problem is
convex in ``H`` and, like the other factorized estimators, only needs two
``k x k`` sufficient statistics of the graph (see
:class:`repro.core.energy.LCETerms`), so the optimization itself is
independent of the graph size.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import uniform_vector, vector_to_matrix
from repro.core.energy import (
    free_parameter_gradient,
    lce_energy,
    lce_matrix_gradient,
    lce_terms,
)
from repro.core.estimators.base import BaseEstimator
from repro.core.optimizer import minimize_free_parameters
from repro.graph.graph import Graph

__all__ = ["LCE"]


class LCE(BaseEstimator):
    """Linear compatibility estimation.

    Parameters
    ----------
    bounds:
        Optional ``(low, high)`` box on the free parameters; the paper's
        formulation is unconstrained, so the default is ``None``.
    max_iterations:
        Iteration cap for the SLSQP solver.
    """

    method_name = "LCE"

    def __init__(
        self,
        bounds: tuple[float, float] | None = None,
        max_iterations: int = 500,
    ) -> None:
        self.bounds = bounds
        self.max_iterations = max_iterations

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        n_classes = graph.n_classes
        terms = lce_terms(graph.adjacency, explicit_beliefs)

        def objective(parameters: np.ndarray) -> float:
            return lce_energy(vector_to_matrix(parameters, n_classes), terms)

        def gradient(parameters: np.ndarray) -> np.ndarray:
            matrix = vector_to_matrix(parameters, n_classes)
            return free_parameter_gradient(lce_matrix_gradient(matrix, terms), n_classes)

        outcome = minimize_free_parameters(
            objective,
            n_classes,
            gradient=gradient,
            initial=uniform_vector(n_classes),
            method="SLSQP",
            bounds=self.bounds,
            max_iterations=self.max_iterations,
        )
        details = {
            "converged": outcome.converged,
            "n_iterations": outcome.n_iterations,
        }
        return outcome.matrix, outcome.energy, details
