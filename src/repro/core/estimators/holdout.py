"""Holdout baseline estimator (Section 4.1).

The textbook approach the paper compares against: split the available seed
labels into Seed/Holdout partitions, run full label propagation from the
Seed part for a candidate ``H``, score accuracy on the Holdout part, and
search the ``k*``-dimensional parameter space for the matrix with the best
(compound) accuracy.  Every objective evaluation performs inference over the
whole graph, which is exactly why this method is orders of magnitude slower
than the factorized estimators — the gap the scalability benchmarks measure.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import uniform_vector, vector_to_matrix
from repro.core.estimators.base import BaseEstimator
from repro.core.optimizer import minimize_free_parameters
from repro.graph.graph import Graph
from repro.propagation.linbp import propagate_and_label
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive

__all__ = ["HoldoutEstimator"]


class HoldoutEstimator(BaseEstimator):
    """Estimate ``H`` by maximizing holdout accuracy of label propagation.

    Parameters
    ----------
    n_splits:
        Number of Seed/Holdout partitions ``b`` whose accuracies are summed
        (higher smooths the objective but multiplies the cost, Fig. 6f).
    holdout_fraction:
        Fraction of the labeled nodes moved to the Holdout side of each split.
    n_propagation_iterations:
        LinBP sweeps per objective evaluation.
    max_evaluations:
        Cap on Nelder-Mead objective evaluations (each one is a full
        propagation over the graph, so keep this modest).
    seed:
        Random seed controlling the partitions.
    """

    method_name = "Holdout"

    def __init__(
        self,
        n_splits: int = 1,
        holdout_fraction: float = 0.5,
        n_propagation_iterations: int = 10,
        max_evaluations: int = 150,
        seed=None,
    ) -> None:
        check_positive(n_splits, "n_splits")
        check_fraction(holdout_fraction, "holdout_fraction")
        check_positive(n_propagation_iterations, "n_propagation_iterations")
        check_positive(max_evaluations, "max_evaluations")
        self.n_splits = n_splits
        self.holdout_fraction = holdout_fraction
        self.n_propagation_iterations = n_propagation_iterations
        self.max_evaluations = max_evaluations
        self.seed = seed

    def _make_partitions(
        self, labeled_indices: np.ndarray, rng: np.random.Generator
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        partitions = []
        n_labeled = labeled_indices.shape[0]
        n_holdout = max(1, int(round(self.holdout_fraction * n_labeled)))
        n_holdout = min(n_holdout, n_labeled - 1) if n_labeled > 1 else 0
        for _ in range(self.n_splits):
            permuted = rng.permutation(labeled_indices)
            holdout = permuted[:n_holdout]
            seed_part = permuted[n_holdout:]
            if seed_part.size == 0:
                seed_part, holdout = holdout, seed_part
            partitions.append((seed_part, holdout))
        return partitions

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        n_classes = graph.n_classes
        rng = ensure_rng(self.seed)
        labeled_indices = np.flatnonzero(seed_labels >= 0)
        partitions = self._make_partitions(labeled_indices, rng)
        evaluation_count = 0

        def negative_compound_accuracy(parameters: np.ndarray) -> float:
            nonlocal evaluation_count
            evaluation_count += 1
            compatibility = vector_to_matrix(parameters, n_classes)
            total_accuracy = 0.0
            for seed_part, holdout in partitions:
                if holdout.size == 0:
                    continue
                partial = np.full(graph.n_nodes, -1, dtype=np.int64)
                partial[seed_part] = seed_labels[seed_part]
                predicted = propagate_and_label(
                    graph,
                    partial,
                    compatibility,
                    n_iterations=self.n_propagation_iterations,
                )
                correct = predicted[holdout] == seed_labels[holdout]
                total_accuracy += float(np.mean(correct))
            return -total_accuracy

        outcome = minimize_free_parameters(
            negative_compound_accuracy,
            n_classes,
            gradient=None,
            initial=uniform_vector(n_classes),
            method="Nelder-Mead",
            max_iterations=self.max_evaluations,
        )
        details = {
            "n_splits": self.n_splits,
            "n_objective_evaluations": evaluation_count,
            "converged": outcome.converged,
        }
        return outcome.matrix, outcome.energy, details
