"""Myopic Compatibility Estimation (MCE), Section 4.3.

MCE summarizes the partially labeled graph into the neighbor label count
matrix ``M = X^T W X``, normalizes it into an observed statistics matrix
``P̂`` (one of the three variants of Eq. 9-11), and then finds the closest
symmetric doubly-stochastic matrix in Frobenius norm (Eq. 12).

Two solution strategies are provided:

* ``solver="projection"`` (default) — the closed-form alternating projection
  onto the affine constraint set, which is exactly the minimizer of Eq. 12;
* ``solver="slsqp"`` — the same SLSQP optimization over free parameters used
  by the other estimators, kept for parity with the paper's implementation
  and exercised by the test suite (the two agree to numerical precision).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.compatibility import uniform_vector, vector_to_matrix
from repro.core.energy import free_parameter_gradient, mce_energy, mce_matrix_gradient
from repro.core.estimators.base import BaseEstimator
from repro.core.optimizer import minimize_free_parameters
from repro.core.statistics import (
    NORMALIZATION_VARIANTS,
    neighbor_statistics,
    normalize_statistics,
)
from repro.graph.graph import Graph
from repro.utils.matrix import nearest_doubly_stochastic

__all__ = ["MCE"]


class MCE(BaseEstimator):
    """Myopic compatibility estimation from direct-neighbor statistics.

    Parameters
    ----------
    variant:
        Normalization variant (1 row-stochastic, 2 symmetric, 3 scaled).
        The paper finds variant 1 consistently best; it is the default.
    solver:
        ``"projection"`` (closed form) or ``"slsqp"``.
    """

    method_name = "MCE"

    def __init__(self, variant: int = 1, solver: str = "projection") -> None:
        if variant not in NORMALIZATION_VARIANTS:
            raise ValueError(
                f"variant must be one of {NORMALIZATION_VARIANTS}, got {variant}"
            )
        if solver not in ("projection", "slsqp"):
            raise ValueError(f"solver must be 'projection' or 'slsqp', got {solver!r}")
        self.variant = variant
        self.solver = solver

    def _estimate(
        self,
        graph: Graph,
        seed_labels: np.ndarray,
        explicit_beliefs: sp.csr_matrix,
    ) -> tuple[np.ndarray, float | None, dict]:
        n_classes = graph.n_classes
        counts = neighbor_statistics(graph.adjacency, explicit_beliefs)
        observed = normalize_statistics(counts, variant=self.variant)
        details = {"observed_statistics": observed, "counts": counts, "variant": self.variant}

        if self.solver == "projection":
            compatibility = nearest_doubly_stochastic(observed)
            return compatibility, mce_energy(compatibility, observed), details

        def objective(parameters: np.ndarray) -> float:
            return mce_energy(vector_to_matrix(parameters, n_classes), observed)

        def gradient(parameters: np.ndarray) -> np.ndarray:
            matrix = vector_to_matrix(parameters, n_classes)
            return free_parameter_gradient(
                mce_matrix_gradient(matrix, observed), n_classes
            )

        outcome = minimize_free_parameters(
            objective,
            n_classes,
            gradient=gradient,
            initial=uniform_vector(n_classes),
            method="SLSQP",
        )
        details["converged"] = outcome.converged
        return outcome.matrix, outcome.energy, details
