"""Factorized graph statistics: the small ``k x k`` summaries (Section 4.3/4.4).

These functions turn a (partially) labeled graph into the compact matrices
the estimators optimize against:

* ``M = X^T W X`` — observed neighbor label counts (MCE, Section 4.3),
* ``M^(l) = X^T W^(l) X`` and its non-backtracking variant
  ``M_NB^(l) = X^T W_NB^(l) X`` — distance-``l`` label counts (DCE,
  Section 4.4/4.5), computed through the factorized summation of
  Algorithm 4.4 so the graph is touched only O(l_max) times,
* the three normalization variants of Eq. 9-11 that map counts ``M`` to the
  observed statistics matrices ``P̂``.

Everything returned here is dense and ``k x k`` — the "graph sketch" whose
size is independent of the graph.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.nonbacktracking import factorized_nb_counts, factorized_walk_counts
from repro.graph.graph import Graph, one_hot_labels
from repro.utils.matrix import (
    nearest_doubly_stochastic,
    row_normalize,
    scale_normalize,
    symmetric_normalize,
    to_csr,
)
from repro.utils.validation import check_positive

__all__ = [
    "neighbor_statistics",
    "path_statistics",
    "normalize_statistics",
    "observed_statistics",
    "gold_standard_compatibility",
    "NORMALIZATION_VARIANTS",
]

NORMALIZATION_VARIANTS = (1, 2, 3)
"""Valid values for the ``variant`` argument (paper Eq. 9, 10, 11)."""


def _as_dense_labels(labels_matrix) -> np.ndarray:
    if sp.issparse(labels_matrix):
        return np.asarray(labels_matrix.todense(), dtype=np.float64)
    return np.asarray(labels_matrix, dtype=np.float64)


def neighbor_statistics(adjacency, labels_matrix) -> np.ndarray:
    """Observed neighbor label counts ``M = X^T W X`` (a ``k x k`` matrix).

    ``M[c, d]`` counts (weighted) edges whose endpoints are labeled ``c`` and
    ``d`` among the *labeled* nodes only, exactly the "myopic" statistic of
    Section 4.3.
    """
    adjacency = to_csr(adjacency)
    dense_labels = _as_dense_labels(labels_matrix)
    propagated = np.asarray(adjacency @ dense_labels)
    return dense_labels.T @ propagated


def path_statistics(
    adjacency,
    labels_matrix,
    max_length: int,
    non_backtracking: bool = True,
) -> list[np.ndarray]:
    """Distance-``l`` label count matrices ``M^(l)`` for ``l = 1 .. max_length``.

    Uses the factorized summation (Algorithm 4.4): intermediates stay
    ``n x k`` and the total cost is O(m k max_length).  With
    ``non_backtracking=True`` (the paper's recommendation) the counts exclude
    paths that immediately reverse an edge, which Theorem 4.1 shows is what
    makes the normalized statistics a consistent estimator of ``H^l``.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    dense_labels = _as_dense_labels(labels_matrix)
    if non_backtracking:
        counts = factorized_nb_counts(adjacency, dense_labels, max_length)
    else:
        counts = factorized_walk_counts(adjacency, dense_labels, max_length)
    return [dense_labels.T @ count for count in counts]


def normalize_statistics(counts: np.ndarray, variant: int = 1) -> np.ndarray:
    """Map a count matrix ``M`` to an observed statistics matrix ``P̂``.

    ``variant`` selects the paper's normalization:

    1. row-stochastic ``diag(M 1)^-1 M`` (Eq. 9, the recommended default),
    2. symmetric ``diag(M 1)^-1/2 M diag(M 1)^-1/2`` (Eq. 10, LGC-style),
    3. scaled so the mean entry is ``1/k`` (Eq. 11).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if variant == 1:
        return row_normalize(counts)
    if variant == 2:
        return symmetric_normalize(counts)
    if variant == 3:
        return scale_normalize(counts)
    raise ValueError(f"variant must be one of {NORMALIZATION_VARIANTS}, got {variant}")


def observed_statistics(
    adjacency,
    labels_matrix,
    max_length: int = 5,
    variant: int = 1,
    non_backtracking: bool = True,
) -> list[np.ndarray]:
    """Normalized path statistics ``P̂^(l)`` for ``l = 1 .. max_length``.

    This is the complete step (1) of the paper's two-step pipeline (Fig. 2):
    a list of ``k x k`` sketches ready to be handed to the optimizer.
    """
    count_matrices = path_statistics(
        adjacency, labels_matrix, max_length, non_backtracking=non_backtracking
    )
    return [normalize_statistics(counts, variant=variant) for counts in count_matrices]


def gold_standard_compatibility(
    graph: Graph, project_doubly_stochastic: bool = False
) -> np.ndarray:
    """Gold-standard compatibilities measured on the fully labeled graph.

    As in Section 5.3: with every label known, ``H_GS`` is simply the
    row-normalized neighbor label frequency matrix.  Set
    ``project_doubly_stochastic=True`` to additionally project onto the
    symmetric doubly-stochastic set (useful when the class prior is so
    imbalanced that row normalization alone is noticeably non-symmetric,
    e.g. before planting the matrix in the synthetic generator).
    """
    labels = graph.require_labels()
    if graph.n_classes is None:
        raise ValueError("graph must know its number of classes")
    full_labels = one_hot_labels(labels, graph.n_classes)
    counts = neighbor_statistics(graph.adjacency, full_labels)
    statistics = normalize_statistics(counts, variant=1)
    if project_doubly_stochastic:
        statistics = nearest_doubly_stochastic(statistics)
    return statistics
