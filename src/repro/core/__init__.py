"""Core contribution: compatibility matrices, factorized statistics, estimators."""

from repro.core.compatibility import (
    free_parameter_count,
    homophily_compatibility,
    matrix_to_vector,
    random_compatibility,
    restart_initial_points,
    skew_compatibility,
    uniform_vector,
    validate_compatibility,
    vector_to_matrix,
)
from repro.core.estimators import (
    BaseEstimator,
    DCE,
    DCEr,
    EstimationResult,
    GoldStandard,
    HeuristicEstimator,
    HoldoutEstimator,
    LCE,
    MCE,
)
from repro.core.statistics import (
    gold_standard_compatibility,
    neighbor_statistics,
    normalize_statistics,
    path_statistics,
)

__all__ = [
    "BaseEstimator",
    "DCE",
    "DCEr",
    "EstimationResult",
    "GoldStandard",
    "HeuristicEstimator",
    "HoldoutEstimator",
    "LCE",
    "MCE",
    "free_parameter_count",
    "gold_standard_compatibility",
    "homophily_compatibility",
    "matrix_to_vector",
    "neighbor_statistics",
    "normalize_statistics",
    "path_statistics",
    "random_compatibility",
    "restart_initial_points",
    "skew_compatibility",
    "uniform_vector",
    "validate_compatibility",
    "vector_to_matrix",
]
