"""Non-backtracking path counting (Sections 4.5 and 4.6).

A path is non-backtracking (NB) if it never traverses the same edge twice in
a row.  The paper's key computational insight (Proposition 4.3) is that the
``n x n`` matrices ``W_NB^(l)`` counting NB paths of length ``l`` obey the
three-term recurrence

    ``W_NB^(l) = W W_NB^(l-1) - (D - I) W_NB^(l-2)``

with ``W_NB^(1) = W`` and ``W_NB^(2) = W^2 - D``, so no 2m x 2m Hashimoto
matrix is needed.  Crucially, the recurrence can be pushed through the thin
``n x k`` label matrix ``X`` (Algorithm 4.4), keeping every intermediate
result ``n x k`` instead of ``n x n``; that is the "factorized graph
representation" that gives the paper its name and its O(m k l_max) bound
(Proposition 4.5).

This module provides both routes — the explicit (expensive) matrices for
validation and the factorized summation for production use — plus the
Hashimoto matrix as an independent cross-check used by the test suite.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.utils.matrix import degree_vector, to_csr
from repro.utils.validation import check_positive

__all__ = [
    "explicit_nb_walk_matrices",
    "explicit_walk_matrices",
    "factorized_nb_counts",
    "factorized_walk_counts",
    "hashimoto_matrix",
    "nb_counts_via_hashimoto",
]


def explicit_walk_matrices(adjacency, max_length: int) -> list[sp.csr_matrix]:
    """All plain walk-count matrices ``W^l`` for ``l = 1 .. max_length``.

    This is the naive strategy the paper benchmarks against in Fig. 5b: the
    intermediate powers densify quickly (``~ d^(l-1) m`` non-zeros), so only
    use it on small graphs or small ``l``.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    powers = [adjacency]
    for _ in range(1, max_length):
        powers.append((adjacency @ powers[-1]).tocsr())
    return powers


def explicit_nb_walk_matrices(adjacency, max_length: int) -> list[sp.csr_matrix]:
    """All NB walk-count matrices ``W_NB^(l)`` via the recurrence of Prop. 4.3.

    Returned as a list indexed ``[l-1]`` for path length ``l``.  Like
    :func:`explicit_walk_matrices` this materializes ``n x n`` intermediates
    and exists for validation and the Fig. 5 experiments, not for scale.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    degrees = degree_vector(adjacency)
    degree_diag = sp.diags(degrees, format="csr")
    matrices: list[sp.csr_matrix] = [adjacency]
    if max_length >= 2:
        matrices.append((adjacency @ adjacency - degree_diag).tocsr())
    degree_minus_identity = sp.diags(degrees - 1.0, format="csr")
    for _ in range(3, max_length + 1):
        nxt = adjacency @ matrices[-1] - degree_minus_identity @ matrices[-2]
        matrices.append(nxt.tocsr())
    return matrices[:max_length]


def factorized_walk_counts(adjacency, labels_matrix, max_length: int) -> list[np.ndarray]:
    """Plain-path label counts ``N^(l) = W^l X`` without forming ``W^l``.

    Evaluates ``W (W (... (W X)))`` right-to-left so every intermediate stays
    ``n x k`` (the query-optimization analogy of footnote 5 in the paper).
    Returns dense ``n x k`` arrays for ``l = 1 .. max_length``.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    current = np.asarray(
        adjacency @ (labels_matrix.toarray() if sp.issparse(labels_matrix) else labels_matrix)
    )
    counts = [current]
    for _ in range(1, max_length):
        current = np.asarray(adjacency @ current)
        counts.append(current)
    return counts


def factorized_nb_counts(adjacency, labels_matrix, max_length: int) -> list[np.ndarray]:
    """NB label counts ``N_NB^(l) = W_NB^(l) X`` via Algorithm 4.4.

    The recurrence of Proposition 4.3 is applied directly to the thin
    ``n x k`` matrices:

    * ``N^(1) = W X``
    * ``N^(2) = W N^(1) - D X``
    * ``N^(l) = W N^(l-1) - (D - I) N^(l-2)`` for ``l >= 3``

    Total cost O(m k max_length); this is the scalable production path.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    dense_labels = (
        labels_matrix.toarray() if sp.issparse(labels_matrix) else np.asarray(labels_matrix)
    ).astype(np.float64)
    degrees = degree_vector(adjacency)

    first = np.asarray(adjacency @ dense_labels)
    counts = [first]
    if max_length >= 2:
        second = np.asarray(adjacency @ first) - degrees[:, None] * dense_labels
        counts.append(second)
    for _ in range(3, max_length + 1):
        nxt = np.asarray(adjacency @ counts[-1]) - (degrees - 1.0)[:, None] * counts[-2]
        counts.append(nxt)
    return counts[:max_length]


def hashimoto_matrix(adjacency) -> tuple[sp.csr_matrix, np.ndarray]:
    """The ``2m x 2m`` non-backtracking (Hashimoto) edge adjacency matrix.

    State ``(u -> v)`` connects to state ``(v -> w)`` whenever ``w != u``.
    Returned together with the ``2m x 2`` array of directed edges so callers
    can map edge states back to node pairs.  Used only as an independent
    reference implementation in tests (the paper's point is precisely that
    this matrix is *not* needed).
    """
    adjacency = to_csr(adjacency)
    coo = adjacency.tocoo()
    directed_edges = np.column_stack([coo.row, coo.col])
    n_states = directed_edges.shape[0]
    # Index directed edges by their source node for fast successor lookup.
    order = np.argsort(directed_edges[:, 0], kind="stable")
    sorted_sources = directed_edges[order, 0]
    boundaries = np.searchsorted(sorted_sources, np.arange(adjacency.shape[0] + 1))
    rows, cols = [], []
    for state_index, (source, target) in enumerate(directed_edges):
        start, end = boundaries[target], boundaries[target + 1]
        for position in range(start, end):
            successor = order[position]
            if directed_edges[successor, 1] == source:
                continue  # backtracking transition
            rows.append(state_index)
            cols.append(successor)
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n_states, n_states))
    return matrix, directed_edges


def nb_counts_via_hashimoto(adjacency, max_length: int) -> list[np.ndarray]:
    """Dense NB path-count matrices computed through the Hashimoto matrix.

    Only feasible for tiny graphs; exists so tests can confirm the recurrence
    of Proposition 4.3 against a completely independent construction.
    """
    check_positive(max_length, "max_length")
    adjacency = to_csr(adjacency)
    n_nodes = adjacency.shape[0]
    hashimoto, directed_edges = hashimoto_matrix(adjacency)
    results = [np.asarray(adjacency.toarray())]
    if max_length == 1:
        return results
    # state_vector[s] follows paths whose first edge is directed edge s.
    state_indicator = sp.identity(directed_edges.shape[0], format="csr")
    current_states = state_indicator
    for _ in range(2, max_length + 1):
        current_states = current_states @ hashimoto
        counts = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        dense_states = np.asarray(current_states.todense())
        sources = directed_edges[:, 0]
        targets = directed_edges[:, 1]
        for start_state in range(directed_edges.shape[0]):
            start_node = sources[start_state]
            # Paths beginning with this directed edge end at the target node
            # of whichever state they currently occupy.
            np.add.at(counts[start_node], targets, dense_states[start_state])
        results.append(counts)
    return results
