"""Command-line interface for the library.

Five subcommands cover the end-to-end workflow without writing Python:

* ``repro generate``   — create a synthetic graph with planted compatibilities
* ``repro dataset``    — build one of the real-world dataset stand-ins
* ``repro summary``    — print structural statistics of a stored graph
* ``repro estimate``   — estimate the compatibility matrix from sparse labels
* ``repro experiment`` — run the full estimate-then-propagate experiment

Graphs are exchanged as ``.npz`` bundles (see :mod:`repro.graph.io`).

Examples
--------
    repro generate --nodes 5000 --edges 62500 --classes 3 --skew 3 -o graph.npz
    repro estimate graph.npz --method DCEr --fraction 0.01
    repro experiment graph.npz --method DCEr --fraction 0.01 --json result.json
    repro experiment graph.npz --method DCEr --propagator harmonic

The ``--propagator`` choices come from the ``PROPAGATORS`` registry of
:mod:`repro.propagation.engine`, so registering a new algorithm makes it
available here without touching this module.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.estimators import DCE, DCEr, GoldStandard, HoldoutEstimator, LCE, MCE
from repro.eval.experiment import run_experiment
from repro.eval.reporting import experiment_to_dict
from repro.eval.seeding import stratified_seed_labels
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.features import graph_summary
from repro.graph.generator import generate_graph
from repro.graph.io import load_graph_npz, save_graph_npz
from repro.core.compatibility import homophily_compatibility, skew_compatibility
from repro.propagation.engine import propagator_names

__all__ = ["main", "build_parser"]

# Per-method constructor shims: map parsed CLI arguments onto the estimator
# constructors (all of these classes are also in the ESTIMATORS registry of
# repro.propagation.engine, keyed by the same names).
ESTIMATORS = {
    "GS": lambda args: GoldStandard(),
    "LCE": lambda args: LCE(),
    "MCE": lambda args: MCE(),
    "DCE": lambda args: DCE(max_length=args.max_length, scaling=args.scaling),
    "DCEr": lambda args: DCEr(
        max_length=args.max_length,
        scaling=args.scaling,
        n_restarts=args.restarts,
        seed=args.seed,
    ),
    "Holdout": lambda args: HoldoutEstimator(seed=args.seed),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Factorized graph representations for SSL from sparse data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="create a synthetic graph")
    generate.add_argument("--nodes", type=int, required=True)
    generate.add_argument("--edges", type=int, required=True)
    generate.add_argument("--classes", type=int, default=3)
    generate.add_argument("--skew", type=float, default=3.0,
                          help="ratio h between max and min compatibility entries")
    generate.add_argument("--homophily", action="store_true",
                          help="plant a homophilous matrix instead of the paired pattern")
    generate.add_argument("--distribution", choices=["uniform", "powerlaw", "constant"],
                          default="uniform")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="output .npz path")

    dataset = subparsers.add_parser("dataset", help="build a real-world dataset stand-in")
    dataset.add_argument("name", choices=dataset_names())
    dataset.add_argument("--scale", type=float, default=None)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("-o", "--output", required=True, help="output .npz path")

    summary = subparsers.add_parser("summary", help="print statistics of a stored graph")
    summary.add_argument("graph", help="input .npz path")

    estimate = subparsers.add_parser("estimate", help="estimate the compatibility matrix")
    _add_estimation_arguments(estimate)

    experiment = subparsers.add_parser(
        "experiment", help="estimate, propagate and score against ground truth"
    )
    _add_estimation_arguments(experiment)
    experiment.add_argument("--iterations", type=int, default=None,
                            help="propagation iteration cap (default: the "
                                 "selected propagator's native budget)")
    experiment.add_argument("--propagator", choices=propagator_names(),
                            default="linbp",
                            help="propagation algorithm for the final labeling")
    experiment.add_argument("--json", help="write the result record to this JSON file")
    return parser


def _add_estimation_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("graph", help="input .npz path")
    subparser.add_argument("--method", choices=sorted(ESTIMATORS), default="DCEr")
    subparser.add_argument("--fraction", type=float, default=0.01,
                           help="fraction of labels revealed as seeds")
    subparser.add_argument("--max-length", type=int, default=5, dest="max_length")
    subparser.add_argument("--scaling", type=float, default=10.0,
                           help="DCE weight scaling factor lambda")
    subparser.add_argument("--restarts", type=int, default=10)
    subparser.add_argument("--seed", type=int, default=0)


def _command_generate(args: argparse.Namespace) -> int:
    if args.homophily:
        compatibility = homophily_compatibility(args.classes, h=args.skew)
    else:
        compatibility = skew_compatibility(args.classes, h=args.skew)
    graph = generate_graph(
        args.nodes,
        args.edges,
        compatibility,
        distribution=args.distribution,
        seed=args.seed,
        name="cli-synthetic",
    )
    save_graph_npz(graph, args.output)
    print(f"wrote {graph.n_nodes} nodes / {graph.n_edges} edges to {args.output}")
    return 0


def _command_dataset(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    save_graph_npz(graph, args.output)
    print(f"wrote {args.name} stand-in ({graph.n_nodes} nodes / {graph.n_edges} edges) "
          f"to {args.output}")
    return 0


def _command_summary(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    summary = graph_summary(graph)
    for key, value in summary.items():
        if isinstance(value, float):
            print(f"{key}: {value:.4f}")
        else:
            print(f"{key}: {value}")
    return 0


def _command_estimate(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    seed_labels = stratified_seed_labels(
        graph.require_labels(), fraction=args.fraction, rng=args.seed
    )
    estimator = ESTIMATORS[args.method](args)
    result = estimator.fit(graph, seed_labels)
    print(f"method: {result.method}")
    print(f"estimation time: {result.elapsed_seconds:.3f}s")
    print("estimated compatibility matrix:")
    for row in np.round(result.compatibility, 4):
        print("  " + "  ".join(f"{value:7.4f}" for value in row))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    graph = load_graph_npz(args.graph)
    estimator = ESTIMATORS[args.method](args)
    result = run_experiment(
        graph,
        estimator,
        label_fraction=args.fraction,
        n_propagation_iterations=args.iterations,
        seed=args.seed,
        propagator=args.propagator,
    )
    print(f"method: {result.method}")
    print(f"propagator: {result.propagator} "
          f"({result.propagation_iterations} sweeps, "
          f"{'converged' if result.propagation_converged else 'not converged'})")
    print(f"seeds: {result.n_seeds} ({result.label_fraction:.2%} of nodes)")
    print(f"macro accuracy: {result.accuracy:.4f}")
    print(f"L2 distance to gold standard: {result.l2_to_gold:.4f}")
    print(f"estimation time: {result.estimation_seconds:.3f}s, "
          f"propagation time: {result.propagation_seconds:.3f}s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(experiment_to_dict(result), handle, indent=2)
        print(f"wrote result record to {args.json}")
    return 0


COMMANDS = {
    "generate": _command_generate,
    "dataset": _command_dataset,
    "summary": _command_summary,
    "estimate": _command_estimate,
    "experiment": _command_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
