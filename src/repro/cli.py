"""Command-line interface for the library.

Fourteen subcommands cover the end-to-end workflow without writing Python:

* ``repro generate``   — create a synthetic graph with planted compatibilities
* ``repro dataset``    — build one of the real-world dataset stand-ins
* ``repro summary``    — print structural statistics of a stored graph
* ``repro estimate``   — estimate the compatibility matrix from sparse labels
* ``repro experiment`` — run the full estimate-then-propagate experiment
* ``repro run``        — execute a grid spec (optionally one shard of it)
* ``repro report``     — summarize a runner result store as a table
* ``repro merge``      — union result stores (content-addressed, latest-wins)
* ``repro gc``         — compact a result store (drop superseded records)
* ``repro stream``     — replay a JSONL delta stream with incremental propagation
* ``repro serve``      — serve label-belief queries over HTTP (micro-batched)
* ``repro top``        — live dashboard over one or more serve ``/metrics``
* ``repro stats``      — summarize a trace file written by ``--trace``
* ``repro list``       — print the registered propagators and estimators

Graphs are exchanged as ``.npz`` bundles (see :mod:`repro.graph.io`).
Result stores are JSONL directories or SQLite files (``--backend``, or just
point ``--store`` at a ``.db`` path).

Examples
--------
    repro generate --nodes 5000 --edges 62500 --classes 3 --skew 3 -o graph.npz
    repro estimate graph.npz --method DCEr --fraction 0.01
    repro experiment graph.npz --method DCEr --fraction 0.01 --json result.json
    repro experiment graph.npz --method DCEr --propagator harmonic
    repro run grid.json --store runs/grid --workers 4
    repro run grid.json --store runs/grid.db --shard 0/2   # one of two shards
    repro report runs/grid
    repro merge runs/merged runs/shard-a runs/shard-b.db
    repro gc runs/grid --drop-failed
    repro stream graph.npz events.jsonl --verify-every 5 --json replay.json
    repro stream ab12ef --from-store runs/grid     # replay a stored run's graph
    repro serve graph.npz --port 8151              # online query service
    repro serve graph.npz --trace trace.jsonl --log-json
    repro serve graph.npz --slo examples/specs/serve_slo.json
    repro serve --workers 4 --queue-dir q/         # horizontal tier (router)
    repro top :8151 :8152                          # live fleet dashboard
    repro top --router :8150                       # discover fleet via router
    repro top :8151 --once --json                  # one federated summary
    repro stats trace.jsonl --slowest 3            # span report from a trace
    repro stats trace.jsonl --trace-id ab12cd      # one request's span tree

``--propagator`` and ``--method`` values are validated against the
``PROPAGATORS``/``ESTIMATORS`` registries of :mod:`repro.propagation.engine`
at execution time, so registering a new algorithm makes it available here
without touching this module; an unknown name (or a missing graph file)
exits with a one-line error listing the valid choices, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.core.estimators import DCE, DCEr, GoldStandard, HoldoutEstimator, LCE, MCE
from repro.eval.experiment import run_experiment
from repro.eval.reporting import experiment_to_dict
from repro.eval.seeding import stratified_seed_labels
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.features import graph_summary
from repro.graph.generator import generate_graph
from repro.graph.io import load_graph_npz, save_graph_npz
from repro.core.compatibility import homophily_compatibility, skew_compatibility
from repro.propagation.engine import (
    ESTIMATORS as ESTIMATOR_REGISTRY,
    PROPAGATORS,
    propagator_names,
)
from repro.runner import (
    GridSpec,
    ProgressPrinter,
    ResultStore,
    StoreCorruptionError,
    execute_grid,
    merge_stores,
    render_store_report,
    summarize_report,
)
from repro.runner.backends import backend_names

__all__ = ["main", "build_parser", "CLIError"]


class CLIError(Exception):
    """A user-facing CLI failure: printed as one clean line, exit code 2."""


# Per-method constructor shims: map parsed CLI arguments onto the estimator
# constructors (all of these classes are also in the ESTIMATORS registry of
# repro.propagation.engine, keyed by the same names).
ESTIMATORS = {
    "GS": lambda args: GoldStandard(),
    "LCE": lambda args: LCE(),
    "MCE": lambda args: MCE(),
    "DCE": lambda args: DCE(max_length=args.max_length, scaling=args.scaling),
    "DCEr": lambda args: DCEr(
        max_length=args.max_length,
        scaling=args.scaling,
        n_restarts=args.restarts,
        seed=args.seed,
    ),
    "Holdout": lambda args: HoldoutEstimator(seed=args.seed),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Factorized graph representations for SSL from sparse data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="create a synthetic graph")
    generate.add_argument("--nodes", type=int, required=True)
    generate.add_argument("--edges", type=int, required=True)
    generate.add_argument("--classes", type=int, default=3)
    generate.add_argument("--skew", type=float, default=3.0,
                          help="ratio h between max and min compatibility entries")
    generate.add_argument("--homophily", action="store_true",
                          help="plant a homophilous matrix instead of the paired pattern")
    generate.add_argument("--distribution", choices=["uniform", "powerlaw", "constant"],
                          default="uniform")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="output .npz path")

    dataset = subparsers.add_parser("dataset", help="build a real-world dataset stand-in")
    dataset.add_argument("name", choices=dataset_names())
    dataset.add_argument("--scale", type=float, default=None)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.add_argument("-o", "--output", required=True, help="output .npz path")

    summary = subparsers.add_parser("summary", help="print statistics of a stored graph")
    summary.add_argument("graph", help="input .npz path")

    estimate = subparsers.add_parser("estimate", help="estimate the compatibility matrix")
    _add_estimation_arguments(estimate)

    experiment = subparsers.add_parser(
        "experiment", help="estimate, propagate and score against ground truth"
    )
    _add_estimation_arguments(experiment)
    experiment.add_argument("--iterations", type=int, default=None,
                            help="propagation iteration cap (default: the "
                                 "selected propagator's native budget)")
    experiment.add_argument("--propagator", default="linbp",
                            help="propagation algorithm for the final labeling "
                                 "(see `repro list`)")
    experiment.add_argument("--json", help="write the result record to this JSON file")

    run = subparsers.add_parser(
        "run", help="execute a grid spec through the parallel runner"
    )
    run.add_argument("spec", help="grid spec JSON file (see `repro.runner.GridSpec`)")
    run.add_argument("--store", default=None,
                     help="result store: a directory (JSONL backend) or a "
                          ".db/.sqlite file (default: runs/<spec name>)")
    run.add_argument("--backend", default=None, choices=backend_names(),
                     help="store backend (default: inferred from the store path)")
    run.add_argument("--shard", default=None, metavar="I/N",
                     help="execute only shard I of N (e.g. 0/2); shards are "
                          "disjoint, deterministic, and union to the full grid")
    run.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: CPU count, at most 4)")
    run.add_argument("--serial", action="store_true",
                     help="run in-process instead of the worker pool")
    run.add_argument("--timeout", type=float, default=None,
                     help="per-run wall-clock budget in seconds")
    run.add_argument("--force", action="store_true",
                     help="re-execute runs even when the store has a result")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-run progress lines")

    report = subparsers.add_parser(
        "report", help="summarize a runner result store as a table"
    )
    report.add_argument("store", help="result store (directory or .db file) "
                                      "written by `repro run`")
    report.add_argument("--metric", default="accuracy",
                        choices=["accuracy", "l2_to_gold", "estimation_seconds",
                                 "propagation_seconds"])

    merge = subparsers.add_parser(
        "merge", help="union result stores into one (content-addressed, "
                      "latest-wins)"
    )
    merge.add_argument("destination",
                       help="destination store (created if absent; directory "
                            "or .db file)")
    merge.add_argument("sources", nargs="+",
                       help="source stores, applied in order (later sources "
                            "win on conflicting hashes)")
    merge.add_argument("--backend", default=None, choices=backend_names(),
                       help="destination backend (default: inferred from "
                            "the path)")

    gc = subparsers.add_parser(
        "gc", help="compact a result store: drop superseded duplicate records"
    )
    gc.add_argument("store", help="result store (directory or .db file) "
                                  "written by `repro run`")
    gc.add_argument("--drop-failed", action="store_true",
                    help="also drop error/timeout records so those runs retry")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be dropped without rewriting")

    stream = subparsers.add_parser(
        "stream", help="replay a JSONL delta stream with incremental propagation"
    )
    _add_estimation_arguments(stream)
    stream.add_argument("events", nargs="?", default=None,
                        help="JSONL event file (one GraphDelta per line); "
                             "omitted: synthesize a stream by replaying the "
                             "graph's own edges as insertion deltas")
    stream.add_argument("--from-store", dest="from_store", metavar="STORE",
                        default=None,
                        help="treat GRAPH as a record hash (prefixes ok) in "
                             "this runner result store and rebuild that "
                             "run's graph instead of reading an .npz file")
    stream.add_argument("--synth-events", type=int, default=20, metavar="N",
                        help="events to synthesize when no event file is "
                             "given (default 20)")
    stream.add_argument("--synth-initial", type=float, default=0.5,
                        metavar="F",
                        help="fraction of edges in the synthesized stream's "
                             "starting graph (default 0.5)")
    stream.add_argument("--propagator", default="linbp",
                        help="propagation algorithm driving the session "
                             "(see `repro list`)")
    stream.add_argument("--iterations", type=int, default=300,
                        help="fixed-point sweep cap (default 300: streaming "
                             "needs converged solves, not the paper's 10)")
    stream.add_argument("--tolerance", type=float, default=1e-8,
                        help="fixed-point convergence tolerance")
    stream.add_argument("--verify-every", type=int, default=0, metavar="N",
                        help="every N steps, run a cold batch re-solve and "
                             "record wall time + max belief deviation")
    stream.add_argument("--verify-tolerance", type=float, default=1e-6,
                        help="fail (exit 1) when a verified deviation "
                             "exceeds this bound")
    stream.add_argument("--localized", action="store_true",
                        help="opt small deltas into the residual-push "
                             "localized solver (iterates only the "
                             "delta-affected frontier)")
    stream.add_argument("--lenient", action="store_true",
                        help="tolerate duplicate edge insertions (weights "
                             "sum) and removals of absent edges (no-ops)")
    stream.add_argument("--no-score", action="store_true",
                        help="skip per-step accuracy scoring")
    stream.add_argument("--json", help="write the replay report to this JSON file")
    stream.add_argument("--trace", default=None, metavar="FILE",
                        help="append obs trace spans (JSONL) to this file; "
                             "summarize with `repro stats FILE`")
    stream.add_argument("--quiet", action="store_true",
                        help="suppress per-step progress lines")

    serve = subparsers.add_parser(
        "serve", help="serve label-belief queries over HTTP with micro-batching"
    )
    serve.add_argument("graph", nargs="?", default=None,
                       help="graph to preload: an .npz path, or a record "
                            "hash with --from-store (more graphs can be "
                            "loaded later via POST /graphs)")
    serve.add_argument("--name", default="default",
                       help="name the preloaded graph is served under")
    serve.add_argument("--from-store", dest="from_store", metavar="STORE",
                       default=None,
                       help="load the preloaded graph from this runner "
                            "result store (GRAPH is then a record hash)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8151)
    serve.add_argument("--propagator", default="linbp",
                       help="propagation algorithm driving the session "
                            "(see `repro list`)")
    serve.add_argument("--method", default="GS",
                       help="compatibility estimator for the preloaded graph")
    serve.add_argument("--fraction", type=float, default=0.05,
                       help="fraction of labels revealed as seeds")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--iterations", type=int, default=300,
                       help="fixed-point sweep cap (serving needs converged "
                            "solves)")
    serve.add_argument("--tolerance", type=float, default=1e-8)
    serve.add_argument("--localized", action="store_true",
                       help="opt the preloaded graph's session into "
                            "residual-push localized solves for small deltas")
    serve.add_argument("--max-batch", type=int, default=128, dest="max_batch",
                       help="flush a micro-batch once this many requests wait")
    serve.add_argument("--max-latency", type=float, default=0.002,
                       dest="max_latency", metavar="SECONDS",
                       help="flush a micro-batch at the latest this long "
                            "after its oldest request arrived")
    serve.add_argument("--no-batching", action="store_true",
                       help="answer every request individually (debugging / "
                            "baseline measurements)")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       dest="cache_entries",
                       help="per-graph query-result cache capacity")
    serve.add_argument("--lenient", action="store_true",
                       help="tolerate duplicate edge adds / absent removals "
                            "in served deltas")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="append obs trace spans (JSONL) to this file; "
                            "each response's X-Repro-Trace header names its "
                            "request tree")
    serve.add_argument("--log-json", action="store_true", dest="log_json",
                       help="emit one JSON object per request to stderr "
                            "(method, path, status, duration_ms, trace), "
                            "plus one per SLO alert transition with --slo")
    serve.add_argument("--trace-sample", type=float, default=None,
                       dest="trace_sample", metavar="P",
                       help="head-sample traces: keep this fraction of "
                            "request trees (decided per trace id; spans "
                            "slower than REPRO_TRACE_SLOW_MS are always "
                            "kept)")
    serve.add_argument("--slo", default=None, metavar="FILE",
                       help="JSON SLO spec (see repro.obs.slo); rules are "
                            "evaluated continuously, degrade /healthz to "
                            "503 while firing, and are listed on /alerts")
    serve.add_argument("--slo-interval", type=float, default=1.0,
                       dest="slo_interval", metavar="SECONDS",
                       help="SLO recorder sampling period (default 1s)")
    serve.add_argument("--workers", type=int, default=0,
                       help="run as a router fronting N worker processes; "
                            "sessions are placed by name hash and requests "
                            "proxied to the owning worker (0 = single "
                            "process, the default)")
    serve.add_argument("--max-sessions", type=int, default=None,
                       dest="max_sessions", metavar="N",
                       help="LRU-evict least-recently-used sessions beyond "
                            "this bound; evicted sessions reload "
                            "transparently on next touch")
    serve.add_argument("--queue-dir", default=None, dest="queue_dir",
                       metavar="DIR",
                       help="durable per-session delta queue directory; "
                            "acked deltas are replayed from it after a "
                            "crash or eviction (router mode shares one "
                            "directory across all workers)")
    serve.add_argument("--port-file", default=None, dest="port_file",
                       metavar="FILE",
                       help="write the bound port to this file once "
                            "listening (for --port 0 and supervisors)")

    top = subparsers.add_parser(
        "top", help="live terminal dashboard over serve /metrics endpoints"
    )
    top.add_argument("endpoints", nargs="*",
                     help="one or more /metrics endpoints: full URLs, "
                          "host:port, or :port (localhost implied); several "
                          "endpoints federate under an 'instance' label")
    top.add_argument("--router", default=None, metavar="URL",
                     help="discover worker /metrics endpoints from a "
                          "router's /fleet listing instead of naming them "
                          "explicitly")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh/sampling period in seconds (default 1)")
    top.add_argument("--window", type=float, default=60.0,
                     help="rate/quantile window in seconds (default 60)")
    top.add_argument("--timeout", type=float, default=2.0,
                     help="per-endpoint scrape timeout in seconds")
    top.add_argument("--once", action="store_true",
                     help="sample twice (one interval apart), print one "
                          "summary, and exit — for scripts and CI")
    top.add_argument("--json", action="store_true", dest="as_json",
                     help="with --once: print the summary as JSON")

    stats = subparsers.add_parser(
        "stats", help="summarize a trace file written by --trace"
    )
    stats.add_argument("trace", help="JSONL trace file (from `repro stream "
                                     "--trace` or `repro serve --trace`)")
    stats.add_argument("--slowest", type=int, default=1, metavar="N",
                       help="render the N slowest root traces as trees "
                            "(default 1; 0 disables)")
    stats.add_argument("--trace-id", default=None, dest="trace_id",
                       metavar="ID",
                       help="render exactly this trace's span tree (unique "
                            "prefixes ok — the X-Repro-Trace header value)")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="print the per-span summary as JSON instead of "
                            "a table")

    subparsers.add_parser(
        "list", help="print the registered propagators and estimators"
    )
    return parser


def _add_estimation_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("graph", help="input .npz path")
    subparser.add_argument("--method", default="DCEr",
                           help="estimator name (see `repro list`)")
    subparser.add_argument("--fraction", type=float, default=0.01,
                           help="fraction of labels revealed as seeds")
    subparser.add_argument("--max-length", type=int, default=5, dest="max_length")
    subparser.add_argument("--scaling", type=float, default=10.0,
                           help="DCE weight scaling factor lambda")
    subparser.add_argument("--restarts", type=int, default=10)
    subparser.add_argument("--seed", type=int, default=0)


# ------------------------------------------------------------------ resolvers
def _resolve_estimator(args: argparse.Namespace):
    """Build the selected estimator or fail with the valid names listed."""
    if args.method not in ESTIMATORS:
        raise CLIError(
            f"unknown estimator {args.method!r}; valid methods: "
            f"{', '.join(sorted(ESTIMATORS))}"
        )
    return ESTIMATORS[args.method](args)


def _check_propagator(name: str) -> str:
    if name not in PROPAGATORS:
        raise CLIError(
            f"unknown propagator {name!r}; valid propagators: "
            f"{', '.join(propagator_names())}"
        )
    return name


def _load_graph(path) -> "object":
    """Load a graph bundle or fail with a clean one-line error."""
    path = Path(path)
    if not path.exists():
        raise CLIError(f"graph file not found: {path}")
    try:
        return load_graph_npz(path)
    except Exception as exc:
        raise CLIError(f"could not read graph file {path}: {exc}") from exc


def _open_store(path, backend: str | None = None, must_exist: bool = True) -> ResultStore:
    """Open a result store (either backend) or fail with a clean error."""
    path = Path(path)
    if must_exist and not path.exists():
        raise CLIError(f"result store not found: {path}")
    try:
        return ResultStore(path, backend=backend)
    except (StoreCorruptionError, ValueError) as exc:
        # ValueError: backend/path-shape mismatch (e.g. --backend jsonl
        # pointed at a regular file) or an unknown backend name.
        raise CLIError(str(exc)) from exc


def _parse_shard(value: str | None) -> tuple[int, int] | None:
    """Parse ``--shard I/N`` into ``(index, n_shards)``."""
    if value is None:
        return None
    parts = value.split("/")
    try:
        index, n_shards = (int(part) for part in parts)
    except ValueError:
        raise CLIError(
            f"--shard must look like I/N (e.g. 0/2), got {value!r}"
        ) from None
    if n_shards < 1 or not 0 <= index < n_shards:
        raise CLIError(
            f"--shard index must satisfy 0 <= I < N, got {value!r}"
        )
    return index, n_shards


def _configure_trace(path: str | None) -> None:
    """Route obs spans for the rest of the process to a JSONL file."""
    if not path:
        return
    from repro import obs

    try:
        obs.configure_tracing(obs.JsonlTraceSink(path))
    except OSError as exc:
        raise CLIError(f"could not open trace file {path}: {exc}") from exc
    print(f"tracing spans to {path}")


# ------------------------------------------------------------------- commands
def _command_generate(args: argparse.Namespace) -> int:
    if args.homophily:
        compatibility = homophily_compatibility(args.classes, h=args.skew)
    else:
        compatibility = skew_compatibility(args.classes, h=args.skew)
    graph = generate_graph(
        args.nodes,
        args.edges,
        compatibility,
        distribution=args.distribution,
        seed=args.seed,
        name="cli-synthetic",
    )
    save_graph_npz(graph, args.output)
    print(f"wrote {graph.n_nodes} nodes / {graph.n_edges} edges to {args.output}")
    return 0


def _command_dataset(args: argparse.Namespace) -> int:
    graph = load_dataset(args.name, scale=args.scale, seed=args.seed)
    save_graph_npz(graph, args.output)
    print(f"wrote {args.name} stand-in ({graph.n_nodes} nodes / {graph.n_edges} edges) "
          f"to {args.output}")
    return 0


def _command_summary(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    summary = graph_summary(graph)
    for key, value in summary.items():
        if isinstance(value, float):
            print(f"{key}: {value:.4f}")
        else:
            print(f"{key}: {value}")
    return 0


def _command_estimate(args: argparse.Namespace) -> int:
    estimator = _resolve_estimator(args)
    graph = _load_graph(args.graph)
    seed_labels = stratified_seed_labels(
        graph.require_labels(), fraction=args.fraction, rng=args.seed
    )
    result = estimator.fit(graph, seed_labels)
    print(f"method: {result.method}")
    print(f"estimation time: {result.elapsed_seconds:.3f}s")
    print("estimated compatibility matrix:")
    for row in np.round(result.compatibility, 4):
        print("  " + "  ".join(f"{value:7.4f}" for value in row))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    estimator = _resolve_estimator(args)
    _check_propagator(args.propagator)
    graph = _load_graph(args.graph)
    result = run_experiment(
        graph,
        estimator,
        label_fraction=args.fraction,
        n_propagation_iterations=args.iterations,
        seed=args.seed,
        propagator=args.propagator,
    )
    print(f"method: {result.method}")
    print(f"propagator: {result.propagator} "
          f"({result.propagation_iterations} sweeps, "
          f"{'converged' if result.propagation_converged else 'not converged'})")
    print(f"seeds: {result.n_seeds} ({result.label_fraction:.2%} of nodes)")
    print(f"macro accuracy: {result.accuracy:.4f}")
    print(f"L2 distance to gold standard: {result.l2_to_gold:.4f}")
    print(f"estimation time: {result.estimation_seconds:.3f}s, "
          f"propagation time: {result.propagation_seconds:.3f}s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(experiment_to_dict(result), handle, indent=2)
        print(f"wrote result record to {args.json}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec_path = Path(args.spec)
    if not spec_path.exists():
        raise CLIError(f"grid spec file not found: {spec_path}")
    try:
        grid = GridSpec.from_json(spec_path)
    except (OSError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise CLIError(f"invalid grid spec {spec_path}: {exc}") from exc

    shard = _parse_shard(args.shard)
    store_path = args.store or os.path.join("runs", grid.name)
    store = _open_store(store_path, backend=args.backend, must_exist=False)
    if args.serial:
        n_workers = 1
    elif args.workers is not None:
        if args.workers < 1:
            raise CLIError("--workers must be >= 1")
        n_workers = args.workers
    else:
        n_workers = min(4, os.cpu_count() or 1)

    if shard is None:
        runs = grid.expand()
        scope = f"{grid.n_runs} runs"
    else:
        index, n_shards = shard
        runs = grid.shard(index, n_shards)
        scope = f"shard {index}/{n_shards}: {len(runs)} of {grid.n_runs} runs"
    print(f"grid {grid.name!r}: {scope} -> {store.results_path} "
          f"[{store.backend_name}] "
          f"({n_workers} worker{'s' if n_workers != 1 else ''})")
    progress = ProgressPrinter(len(runs), enabled=not args.quiet)
    report = execute_grid(
        runs,
        store=store,
        n_workers=n_workers,
        timeout=args.timeout,
        force=args.force,
        progress=progress,
    )
    print(summarize_report(report))
    print(f"store: {store.results_path} ({len(store)} records), "
          f"manifest: {store.manifest_path}")
    return 1 if report.n_errors else 0


def _command_report(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if len(store) == 0:
        raise CLIError(f"result store {args.store} is empty")
    print(render_store_report(store, metric=args.metric))
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    sources = [_open_store(path) for path in args.sources]
    destination = _open_store(args.destination, backend=args.backend,
                              must_exist=False)
    stats = merge_stores(destination, sources)
    print(f"merged {stats['n_sources']} store(s) into "
          f"{destination.results_path} [{destination.backend_name}]: "
          f"{stats['n_added']} added, {stats['n_identical']} identical, "
          f"{stats['n_conflicts']} conflict(s) overwritten "
          f"({len(destination)} records total)")
    for conflict in stats["conflicts"]:
        print(f"  conflict {conflict['hash'][:16]}…: "
              f"{conflict['old_status']} -> {conflict['new_status']}")
    return 0


def _command_gc(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    if args.dry_run:
        n_physical = store.n_physical_records()
        n_failed = sum(
            1 for record in store.records() if record.get("status") != "ok"
        ) if args.drop_failed else 0
        print(f"{args.store}: {n_physical} stored records, {len(store)} live; "
              f"compaction would drop {n_physical - len(store)} superseded "
              f"and {n_failed} failed records")
        return 0
    stats = store.compact(drop_failed=args.drop_failed)
    print(f"compacted {args.store}: kept {stats['n_kept']} of "
          f"{stats['n_lines_before']} records "
          f"({stats['n_dropped_superseded']} superseded, "
          f"{stats['n_dropped_failed']} failed dropped); manifest rewritten")
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from repro.eval.seeding import stratified_seed_indices
    from repro.stream import read_delta_stream, replay_events, synthesize_delta_stream

    _check_propagator(args.propagator)
    _configure_trace(args.trace)
    if args.from_store:
        # GRAPH is a record hash: rebuild the graph that run executed on,
        # through the same loader the serving layer uses.
        from repro.serve.loader import GraphSourceError, graph_from_store

        try:
            graph, record = graph_from_store(args.from_store, args.graph)
        except GraphSourceError as exc:
            raise CLIError(str(exc)) from exc
        print(f"rebuilt graph of record {record['hash'][:16]}… from "
              f"{args.from_store} ({graph.n_nodes} nodes / {graph.n_edges} edges)")
    else:
        graph = _load_graph(args.graph)

    if args.events is not None:
        events_path = Path(args.events)
        if not events_path.exists():
            raise CLIError(f"event file not found: {events_path}")
        try:
            deltas = read_delta_stream(events_path)
        except ValueError as exc:
            raise CLIError(str(exc)) from exc
        if not deltas:
            raise CLIError(f"event file {events_path} contains no deltas")
    else:
        # No recorded events: replay the graph itself as a stream of edge
        # insertions (the runner-store ingestion scenario).
        try:
            graph, deltas = synthesize_delta_stream(
                graph,
                n_events=args.synth_events,
                initial_fraction=args.synth_initial,
                seed=args.seed,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from exc
        print(f"synthesized {len(deltas)} insertion events from the graph "
              f"(starting from {graph.n_edges} of its edges)")

    if graph.labels is None:
        raise CLIError(
            f"graph {args.graph} carries no ground-truth labels; streaming "
            "replay needs them for seeding and scoring"
        )
    seed_indices = stratified_seed_indices(
        graph.require_labels(), fraction=args.fraction, rng=args.seed
    )
    seed_labels = graph.partial_labels(seed_indices)

    propagator = PROPAGATORS[args.propagator](
        max_iterations=args.iterations, tolerance=args.tolerance
    )
    compatibility = None
    if propagator.needs_compatibility:
        estimator = _resolve_estimator(args)
        estimation = estimator.fit(graph, seed_labels)
        compatibility = estimation.compatibility
        print(f"estimated compatibility with {estimation.method} "
              f"({estimation.elapsed_seconds:.3f}s)")

    report = replay_events(
        graph,
        deltas,
        propagator,
        compatibility=compatibility,
        seed_labels=seed_labels,
        verify_every=args.verify_every,
        score=not args.no_score,
        strict=not args.lenient,
        localized=args.localized,
    )
    if not args.quiet:
        for record in report.steps:
            line = (f"step {record.step:3d}: {record.delta:<42s} "
                    f"{record.mode:<11s} {record.total_seconds * 1e3:8.1f} ms")
            if record.accuracy is not None:
                line += f"  acc {record.accuracy:.4f}"
            if record.deviation is not None:
                line += (f"  [full {record.full_seconds * 1e3:.1f} ms, "
                         f"dev {record.deviation:.1e}]")
            print(line)

    from repro.propagation import kernels

    print(f"{len(report.steps)} steps: {report.n_incremental} incremental, "
          f"{report.n_localized} localized, {report.n_full} full "
          f"[kernels: {kernels.active_backend()}]")
    print(f"touched nonzeros (cumulative): {report.total_touched_nnz:,}")
    if report.final_accuracy is not None:
        print(f"final accuracy: {report.final_accuracy:.4f}")
    if report.mean_seconds("incremental") is not None:
        print(f"mean incremental step: "
              f"{report.mean_seconds('incremental') * 1e3:.1f} ms")
    if report.mean_seconds("localized") is not None:
        print(f"mean localized step: "
              f"{report.mean_seconds('localized') * 1e3:.1f} ms")
    if report.verified_speedup is not None:
        print(f"verified full re-solve speedup: {report.verified_speedup:.2f}x")
    if report.max_deviation is not None:
        print(f"max verified deviation: {report.max_deviation:.2e}")
    quality = report.quality or {}
    prequential = quality.get("prequential") or {}
    if prequential.get("scored"):
        drift = (quality.get("drift") or {}).get("value")
        churn = quality.get("churn") or {}
        line = (f"prequential accuracy: {prequential['accuracy']:.4f} "
                f"({prequential['scored']} reveals scored, "
                f"top-{prequential['top_k']} hits {prequential['topk_hits']})")
        print(line)
        print(f"belief churn: {churn.get('flips_total', 0)} argmax flips"
              + (f"; compatibility drift: {drift:.4f}" if drift is not None else ""))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote replay report to {args.json}")

    if report.max_deviation is not None and report.max_deviation > args.verify_tolerance:
        print(f"repro: error: incremental beliefs deviate from the batch "
              f"re-solve by {report.max_deviation:.2e} "
              f"(> {args.verify_tolerance:g})", file=sys.stderr)
        return 1
    return 0


def _make_slo_recorder(args: argparse.Namespace, service) -> "object | None":
    """Build the recorder+SLO stack for ``repro serve --slo`` (or None)."""
    if not args.slo:
        return None
    from repro import obs

    slo_path = Path(args.slo)
    if not slo_path.exists():
        raise CLIError(f"SLO spec file not found: {slo_path}")
    try:
        spec = obs.SloSpec.from_json(slo_path)
    except obs.SloSpecError as exc:
        raise CLIError(str(exc)) from exc
    if args.slo_interval <= 0:
        raise CLIError("--slo-interval must be > 0")
    registries = [service.registry]
    if obs.metrics() is not service.registry:
        registries.append(obs.metrics())
    recorder = obs.TimeSeriesRecorder(
        obs.registry_source(registries), interval_seconds=args.slo_interval
    )
    recorder.attach_slo(spec)

    def on_alert(status, firing: bool) -> None:
        if args.log_json:
            line = json.dumps(
                {"event": "slo_alert", **status.to_dict()},
                separators=(",", ":"),
            )
        else:
            verb = "FIRING" if firing else "resolved"
            line = f"alert {status.name} {verb}: {status.detail}"
        print(line, file=sys.stderr, flush=True)

    recorder.on_alert = on_alert
    print(f"SLO spec {slo_path}: {len(spec.rules)} rule(s), "
          f"sampled every {args.slo_interval:g}s")
    return recorder


def _write_port_file(path: str | None, port: int) -> None:
    """Publish the bound port for ``--port 0`` supervisors (router, tests)."""
    if path:
        Path(path).write_text(f"{port}\n")


def _serve_router(args: argparse.Namespace) -> int:
    """``repro serve --workers N``: router + supervised worker pool."""
    from repro.serve import ServeError
    from repro.serve.router import Router, make_router_server

    worker_args = [
        "--cache-entries", str(args.cache_entries),
        "--max-batch", str(args.max_batch),
        "--max-latency", str(args.max_latency),
    ]
    if args.lenient:
        worker_args.append("--lenient")
    if args.no_batching:
        worker_args.append("--no-batching")
    if args.max_sessions is not None:
        worker_args += ["--max-sessions", str(args.max_sessions)]
    if args.slo:
        # Each worker runs the spec against its own recorder; the router's
        # /healthz aggregation surfaces any worker's firing rules.
        slo_path = Path(args.slo)
        if not slo_path.exists():
            raise CLIError(f"SLO spec file not found: {slo_path}")
        worker_args += ["--slo", str(slo_path),
                        "--slo-interval", str(args.slo_interval)]
    router = Router(
        args.workers,
        host=args.host,
        queue_dir=args.queue_dir,
        worker_args=worker_args,
    )
    try:
        router.start()
    except ServeError as exc:
        router.close()
        raise CLIError(str(exc)) from exc
    print(f"spawned {args.workers} worker(s): "
          + ", ".join(h.url for h in router.workers))
    if args.graph is not None:
        _check_propagator(args.propagator)
        payload = {
            "name": args.name,
            "propagator": args.propagator,
            "method": args.method,
            "fraction": args.fraction,
            "seed": args.seed,
            "iterations": args.iterations,
            "tolerance": args.tolerance,
            "localized": args.localized,
        }
        if args.from_store:
            payload["store"] = args.from_store
            payload["hash"] = args.graph
        else:
            if not Path(args.graph).exists():
                router.close()
                raise CLIError(f"graph file not found: {args.graph}")
            payload["path"] = args.graph
        status, body = router.handle_load(payload)
        if status != 201:
            router.close()
            raise CLIError(f"preload failed ({status}): "
                           f"{body.decode('utf-8', 'replace')}")
        owner = router.place(args.name)
        print(f"loaded {args.name!r} on worker {owner}")
    elif args.from_store:
        router.close()
        raise CLIError("--from-store needs a record hash as the GRAPH argument")
    try:
        server = make_router_server(
            router, host=args.host, port=args.port, log_json=args.log_json
        )
    except OSError as exc:
        router.close()
        raise CLIError(f"could not bind {args.host}:{args.port}: {exc}") from exc
    _write_port_file(args.port_file, server.server_address[1])
    print(f"routing on http://{args.host}:{server.server_address[1]} "
          f"[{args.workers} worker(s), placement by session name] — "
          f"Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down fleet")
    finally:
        server.close()
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import InferenceService, MicroBatcher, ServeError, make_server

    if args.workers < 0:
        raise CLIError("--workers must be >= 0")
    if args.max_sessions is not None and args.max_sessions < 1:
        raise CLIError("--max-sessions must be >= 1")
    if args.workers:
        return _serve_router(args)
    _configure_trace(args.trace)
    if args.trace_sample is not None:
        if not 0.0 <= args.trace_sample <= 1.0:
            raise CLIError("--trace-sample must be in [0, 1]")
        from repro import obs

        obs.configure_sampling(probability=args.trace_sample)
        print(f"head-sampling traces at p={args.trace_sample:g} "
              f"(slow spans always kept)")
    service = InferenceService(
        cache_entries=args.cache_entries,
        strict_deltas=not args.lenient,
        max_sessions=args.max_sessions,
        queue_dir=args.queue_dir,
    )
    if args.graph is not None:
        _check_propagator(args.propagator)
        load_kwargs = dict(
            propagator=args.propagator,
            method=args.method,
            fraction=args.fraction,
            seed=args.seed,
            iterations=args.iterations,
            tolerance=args.tolerance,
            localized=args.localized,
        )
        try:
            if args.from_store:
                info = service.load_graph(
                    args.name, store=args.from_store, run_hash=args.graph,
                    **load_kwargs,
                )
            else:
                if not Path(args.graph).exists():
                    raise CLIError(f"graph file not found: {args.graph}")
                info = service.load_graph(args.name, path=args.graph, **load_kwargs)
        except ServeError as exc:
            raise CLIError(str(exc)) from exc
        print(f"loaded {args.name!r}: {info['n_nodes']} nodes / "
              f"{info['n_edges']} edges, propagator {info['propagator']}, "
              f"{info['n_seeds']} seeds")
    elif args.from_store:
        raise CLIError("--from-store needs a record hash as the GRAPH argument")

    recorder = _make_slo_recorder(args, service)
    batcher = None
    if not args.no_batching:
        batcher = MicroBatcher(
            service,
            max_batch=args.max_batch,
            max_latency_seconds=args.max_latency,
        )
    try:
        server = make_server(
            service, host=args.host, port=args.port, batcher=batcher,
            log_json=args.log_json, recorder=recorder,
        )
    except OSError as exc:
        if batcher is not None:
            batcher.close()
        raise CLIError(f"could not bind {args.host}:{args.port}: {exc}") from exc
    if recorder is not None:
        recorder.start()
    _write_port_file(args.port_file, server.server_address[1])
    mode = "unbatched" if batcher is None else (
        f"micro-batched (<= {args.max_batch}/flush, "
        f"{args.max_latency * 1e3:g} ms budget)"
    )
    print(f"serving on http://{args.host}:{server.server_address[1]} "
          f"[{mode}] — Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _discover_fleet(router: str, timeout: float) -> list[str]:
    """Worker /metrics endpoints from a router's ``/fleet`` listing."""
    import urllib.error
    import urllib.request

    from repro.obs.scrape import normalize_endpoint

    try:
        _, url = normalize_endpoint(router)
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    url = url.rsplit("/", 1)[0] + "/fleet"  # normalize appends /metrics
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            fleet = json.loads(response.read().decode("utf-8"))
    except (OSError, urllib.error.URLError, json.JSONDecodeError) as exc:
        raise CLIError(f"could not read fleet listing from {url}: {exc}") from exc
    endpoints = [
        worker["metrics_url"]
        for worker in fleet.get("workers", [])
        if worker.get("metrics_url")
    ]
    if not endpoints:
        raise CLIError(f"router at {url} reports no workers with metrics")
    return endpoints


def _command_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs import top as obs_top

    if args.as_json and not args.once:
        raise CLIError("--json needs --once (one machine-readable summary)")
    if args.interval <= 0:
        raise CLIError("--interval must be > 0")
    if args.router:
        if args.endpoints:
            raise CLIError("give explicit endpoints or --router, not both")
        endpoints = _discover_fleet(args.router, timeout=args.timeout)
    elif args.endpoints:
        endpoints = args.endpoints
    else:
        raise CLIError("repro top needs /metrics endpoints or --router URL")
    try:
        client = obs_top.TopClient(
            endpoints,
            interval_seconds=args.interval,
            window_seconds=args.window,
            timeout=args.timeout,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc
    if args.once:
        # Rates need two edge samples, one interval apart.
        client.poll()
        time.sleep(args.interval)
        client.poll()
        summary = client.summary()
        if args.as_json:
            print(json.dumps(summary, indent=2))
        else:
            print(obs_top.render(client), end="")
        return 0 if summary["instances_up"] else 1
    try:
        while True:
            client.poll()
            sys.stdout.write("\x1b[2J\x1b[H" + obs_top.render(client))
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.obs import (
        TraceReadError,
        read_trace,
        render_trace_report,
        render_trace_tree,
        summarize_spans,
    )

    path = Path(args.trace)
    if not path.exists():
        raise CLIError(f"trace file not found: {path}")
    try:
        records = read_trace(path)
    except TraceReadError as exc:
        raise CLIError(str(exc)) from exc
    if not records:
        raise CLIError(f"trace file {path} contains no spans")
    if args.trace_id:
        try:
            print(render_trace_tree(records, args.trace_id), end="")
        except ValueError as exc:
            raise CLIError(str(exc)) from exc
        return 0
    if args.as_json:
        print(json.dumps(summarize_spans(records), indent=2))
    else:
        print(render_trace_report(records, slowest=args.slowest), end="")
    return 0


def _first_docstring_line(obj) -> str:
    docstring = (obj.__doc__ or "").strip()
    return docstring.splitlines()[0] if docstring else "(no docstring)"


def _command_list(args: argparse.Namespace) -> int:
    width = max(
        (len(name) for name in list(PROPAGATORS) + list(ESTIMATOR_REGISTRY)),
        default=0,
    )
    print("propagators:")
    for name in sorted(PROPAGATORS):
        print(f"  {name:<{width}}  {_first_docstring_line(PROPAGATORS[name])}")
    print("estimators:")
    for name in sorted(ESTIMATOR_REGISTRY):
        print(f"  {name:<{width}}  {_first_docstring_line(ESTIMATOR_REGISTRY[name])}")
    return 0


COMMANDS = {
    "generate": _command_generate,
    "dataset": _command_dataset,
    "summary": _command_summary,
    "estimate": _command_estimate,
    "experiment": _command_experiment,
    "run": _command_run,
    "report": _command_report,
    "merge": _command_merge,
    "gc": _command_gc,
    "stream": _command_stream,
    "serve": _command_serve,
    "top": _command_top,
    "stats": _command_stats,
    "list": _command_list,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except (CLIError, StoreCorruptionError) as error:
        # StoreCorruptionError can surface after a store was opened cleanly
        # (write_manifest/compact re-read the backend, which a sibling
        # writer's crash may have damaged meanwhile) — same clean one-line
        # contract as corruption detected at open time.
        print(f"repro: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
