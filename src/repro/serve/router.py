"""Horizontal serving tier: a router fronting a pool of worker processes.

One serving process is bounded by the GIL and by memory: every loaded
session competes for the same interpreter.  The router splits the tier
horizontally —

* **N worker processes**, each a full single-process server (`repro
  serve`: service + micro-batcher + HTTP), spawned and supervised by the
  router, bound to ephemeral ports discovered through ``--port-file``;
* **deterministic session placement**: session ``name`` lives on worker
  ``place(name, N)`` (:mod:`repro.utils.placement` — the same SHA-256
  arithmetic as grid sharding).  The router computes it per request, and
  so can anyone else: smart clients talk straight to the owning worker and
  skip the proxy hop entirely;
* **the same JSON API**: clients point at the router instead of a worker
  and nothing changes — ``/graphs/*`` requests are proxied to the owner
  over keep-alive connections;
* **supervision + recovery**: a worker that dies (crash, OOM kill,
  ``kill -9``) is respawned on the next supervision tick or on the first
  proxied request that hits the corpse, and every session it owned is
  **re-placed**: the router re-issues the recorded load with
  ``recover=true``, so the worker rebuilds the session from source and
  replays its durable delta queue (the queue directory is shared across
  the fleet, so the log survives the worker that wrote it).  Acknowledged
  deltas are never lost; proxied delta retries carry idempotency ids so
  at-least-once delivery cannot double-apply;
* **fleet observability**: ``GET /metrics`` federates every worker's
  registry under an ``instance`` label (PR 8's scrape machinery, reused
  verbatim), ``GET /healthz`` aggregates worker health and names exactly
  which workers/graphs are in trouble, ``GET /fleet`` lists the workers
  for ``repro top --router``.

Everything is stdlib-only (``subprocess`` + ``http.client`` +
``http.server``), matching the serve tier's dependency posture.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro import obs
from repro.obs.scrape import (
    federate_snapshots,
    label_snapshot,
    parse_prometheus,
)
from repro.serve.service import ServeError
from repro.utils.placement import place

__all__ = ["Router", "RouterHTTPServer", "WorkerHandle", "make_router_server"]

# Proxied requests may sit behind a full propagation on the worker.
PROXY_TIMEOUT_SECONDS = 300.0


class WorkerHandle:
    """One supervised worker process and the sessions placed on it."""

    def __init__(self, index: int, host: str) -> None:
        self.index = index
        self.host = host
        self.port: int | None = None
        self.process: subprocess.Popen | None = None
        self.port_file: Path | None = None
        # Successful load payloads by session name — the re-place recipe a
        # recovery replays (with recover=true) onto the respawned worker.
        self.loads: dict[str, dict] = {}
        # Bumped on every (re)spawn; a proxy thread that saw the worker die
        # passes the generation it observed, so recovery runs exactly once
        # per death no matter how many requests hit the corpse.
        self.generation = 0
        self.recover_lock = threading.Lock()
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    def describe(self) -> dict:
        return {
            "index": self.index,
            "url": self.url if self.port else None,
            "metrics_url": f"{self.url}/metrics" if self.port else None,
            "alive": self.alive,
            "pid": self.pid,
            "restarts": self.restarts,
            "sessions": sorted(self.loads),
        }


class Router:
    """Spawns, supervises, and proxies to a pool of serve workers.

    Parameters
    ----------
    n_workers:
        Pool size; session placement is ``place(name, n_workers)``.
    host:
        Interface the workers bind (ephemeral ports) and connect on.
    queue_dir:
        Durable delta-queue directory **shared by all workers** — this is
        what makes recovery lossless.  Defaults to a router-owned
        temporary directory (durable across worker deaths, not across
        router restarts; pass a real path for the latter).
    worker_args:
        Extra ``repro serve`` CLI arguments forwarded to every worker
        (batching knobs, ``--lenient``, ``--max-sessions`` ...).
    spawn_timeout:
        Seconds to wait for a worker to write its port file and pass its
        first health check.
    supervise_interval:
        Supervision tick; dead workers are also detected inline by the
        first proxied request that fails, so this only bounds *idle*
        detection latency.
    """

    def __init__(
        self,
        n_workers: int,
        host: str = "127.0.0.1",
        queue_dir=None,
        worker_args: list[str] | None = None,
        spawn_timeout: float = 60.0,
        supervise_interval: float = 0.5,
        registry=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.host = host
        self.worker_args = list(worker_args or [])
        self.spawn_timeout = float(spawn_timeout)
        self.supervise_interval = float(supervise_interval)
        self.registry = registry if registry is not None else obs.metrics()
        self.started_at = time.time()
        self._owned_tmp: tempfile.TemporaryDirectory | None = None
        if queue_dir is None:
            self._owned_tmp = tempfile.TemporaryDirectory(prefix="repro-queues-")
            queue_dir = self._owned_tmp.name
        self.queue_dir = Path(queue_dir)
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.workers = [WorkerHandle(i, host) for i in range(self.n_workers)]
        self._local = threading.local()  # per-thread keep-alive connections
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        self._c_proxied = self.registry.counter(
            "repro_router_proxied_total",
            "Requests proxied to workers, by method.",
        )
        self._c_recoveries = self.registry.counter(
            "repro_router_recoveries_total",
            "Dead workers respawned with their sessions re-placed.",
        )
        self._c_retries = self.registry.counter(
            "repro_router_retries_total",
            "Proxied requests retried after a worker recovery.",
        )

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Spawn the pool, health-gate every worker, start supervision."""
        try:
            for handle in self.workers:
                self._spawn(handle)
        except Exception:
            self.close()
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-router-supervisor", daemon=True
        )
        self._supervisor.start()

    def close(self) -> None:
        """Stop supervision and terminate every worker."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        for handle in self.workers:
            if handle.process is not None and handle.process.poll() is None:
                handle.process.terminate()
        deadline = time.monotonic() + 5.0
        for handle in self.workers:
            if handle.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.wait(timeout=5.0)
        if self._owned_tmp is not None:
            self._owned_tmp.cleanup()
            self._owned_tmp = None

    def __enter__(self) -> "Router":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- spawning
    def _worker_command(self, handle: WorkerHandle) -> list[str]:
        return [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", self.host,
            "--port", "0",
            "--port-file", str(handle.port_file),
            "--queue-dir", str(self.queue_dir),
            *self.worker_args,
        ]

    def _spawn(self, handle: WorkerHandle) -> None:
        fd, port_file = tempfile.mkstemp(prefix=f"repro-w{handle.index}-",
                                         suffix=".port")
        os.close(fd)
        os.unlink(port_file)  # the worker creates it after binding
        handle.port_file = Path(port_file)
        handle.port = None
        handle.process = subprocess.Popen(
            self._worker_command(handle),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=os.environ.copy(),
        )
        handle.generation += 1
        try:
            handle.port = self._await_port(handle)
            self._await_healthy(handle)
        except Exception:
            if handle.process.poll() is None:
                handle.process.kill()
                handle.process.wait(timeout=5.0)
            raise

    def _await_port(self, handle: WorkerHandle) -> int:
        deadline = time.monotonic() + self.spawn_timeout
        while time.monotonic() < deadline:
            if handle.process.poll() is not None:
                raise ServeError(
                    f"worker {handle.index} exited with code "
                    f"{handle.process.returncode} before binding",
                    status=502,
                )
            try:
                text = handle.port_file.read_text().strip()
                if text:
                    return int(text)
            except (FileNotFoundError, ValueError):
                pass
            time.sleep(0.02)
        raise ServeError(
            f"worker {handle.index} did not report a port within "
            f"{self.spawn_timeout:g}s", status=502,
        )

    def _await_healthy(self, handle: WorkerHandle) -> None:
        """Health-gate: the worker joins the pool only once /healthz is 200."""
        deadline = time.monotonic() + self.spawn_timeout
        last_error = "no response"
        while time.monotonic() < deadline:
            if handle.process.poll() is not None:
                raise ServeError(
                    f"worker {handle.index} died during health gate "
                    f"(exit code {handle.process.returncode})", status=502,
                )
            try:
                status, _ = self._raw_request(handle, "GET", "/healthz", None,
                                              timeout=2.0, fresh=True)
                if status == 200:
                    return
                last_error = f"healthz returned {status}"
            except OSError as exc:
                last_error = str(exc)
            time.sleep(0.05)
        raise ServeError(
            f"worker {handle.index} never became healthy within "
            f"{self.spawn_timeout:g}s ({last_error})", status=502,
        )

    # ---------------------------------------------------------- supervision
    def _supervise(self) -> None:
        # Sleep *before* the first sweep: every worker was health-gated
        # moments ago in start(), and sweeping immediately races tests (and
        # operators) that kill a worker right after startup expecting a
        # large supervise_interval to mean "supervision effectively off".
        while not self._stop.is_set():
            self._stop.wait(self.supervise_interval)
            if self._stop.is_set():
                return
            for handle in self.workers:
                if self._stop.is_set():
                    return
                if handle.process is not None and handle.process.poll() is not None:
                    try:
                        self.recover(handle.index, handle.generation)
                    except Exception:  # pragma: no cover - keep supervising
                        pass

    def recover(self, index: int, dead_generation: int) -> bool:
        """Respawn a dead worker and re-place every session it owned.

        Idempotent per death: callers pass the generation they observed
        dead; whoever wins the lock respawns, everyone else returns
        immediately and retries against the fresh worker.  Each recorded
        load is re-issued with ``recover=true`` — the worker rebuilds the
        session from its source and replays the shared durable queue, so
        the session comes back at the exact version of its last
        acknowledged delta.
        """
        handle = self.workers[index]
        with handle.recover_lock:
            if handle.generation != dead_generation or self._stop.is_set():
                return False  # already recovered (or shutting down)
            if handle.process is not None and handle.process.poll() is None:
                # A proxy thread lands here the instant its request fails,
                # which can be before the kernel has reaped a SIGKILLed
                # worker — wait briefly for the death to materialize before
                # declaring the connection failure a false alarm.
                deadline = time.monotonic() + 2.0
                while (time.monotonic() < deadline
                       and handle.process.poll() is None):
                    time.sleep(0.02)
                if handle.process.poll() is None:
                    return False  # genuinely alive: transient network blip
            self._spawn(handle)
            handle.restarts += 1
            self._c_recoveries.inc()
            for name, payload in sorted(handle.loads.items()):
                body = dict(payload)
                body["recover"] = True
                body["replace"] = True
                status, response = self._raw_request(
                    handle, "POST", "/graphs",
                    json.dumps(body).encode("utf-8"), fresh=True,
                )
                if status != 201:  # pragma: no cover - replay should succeed
                    self.registry.counter(
                        "repro_router_replace_failures_total",
                        "Session re-placements that failed after recovery.",
                    ).inc()
            return True

    # --------------------------------------------------------------- proxy
    def place(self, name: str) -> int:
        """The worker index owning session ``name`` (pure arithmetic)."""
        return place(name, self.n_workers)

    def worker_for(self, name: str) -> WorkerHandle:
        return self.workers[self.place(name)]

    def _connection(self, handle: WorkerHandle, fresh: bool) -> http.client.HTTPConnection:
        """A keep-alive connection to ``handle``, cached per thread+address.

        The cache key includes the port, which changes on every respawn —
        stale connections to a dead generation simply stop being used.
        """
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        key = (handle.host, handle.port)
        conn = pool.get(key)
        if fresh and conn is not None:
            conn.close()
            conn = None
        if conn is None:
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=PROXY_TIMEOUT_SECONDS
            )
            pool[key] = conn
        return conn

    def _raw_request(
        self, handle: WorkerHandle, method: str, path: str,
        body: bytes | None, timeout: float | None = None, fresh: bool = False,
    ) -> tuple[int, bytes]:
        conn = self._connection(handle, fresh)
        if timeout is not None:
            conn.timeout = timeout
        headers = {"Content-Type": "application/json"}
        if body is not None:
            headers["Content-Length"] = str(len(body))
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            return response.status, payload
        except (OSError, http.client.HTTPException):
            # Poison the cached connection so the next attempt dials fresh.
            conn.close()
            pool = getattr(self._local, "pool", {})
            pool.pop((handle.host, handle.port), None)
            raise

    def forward(
        self, method: str, path: str, name: str, body: bytes | None,
    ) -> tuple[int, bytes]:
        """Proxy one ``/graphs/*`` request to the owner of ``name``.

        A connection failure means the worker died mid-request: trigger
        (or wait for) its recovery, then retry exactly once against the
        respawned worker.  Deltas are safe to retry because the proxy
        stamps an idempotency id before the first attempt; loads and
        queries are idempotent by construction.
        """
        handle = self.worker_for(name)
        self._c_proxied.inc()
        generation = handle.generation
        try:
            return self._raw_request(handle, method, path, body)
        except (OSError, http.client.HTTPException):
            self.recover(handle.index, generation)
            self._c_retries.inc()
            try:
                return self._raw_request(handle, method, path, body, fresh=True)
            except (OSError, http.client.HTTPException) as exc:
                raise ServeError(
                    f"worker {handle.index} unreachable after recovery: {exc}",
                    status=502,
                ) from exc

    def handle_load(self, payload: dict) -> tuple[int, bytes]:
        """Place and proxy a load; record the recipe for future recovery."""
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError("load needs a non-empty 'name'")
        handle = self.worker_for(name)
        status, response = self.forward(
            "POST", "/graphs", name, json.dumps(payload).encode("utf-8")
        )
        if status == 201:
            recipe = dict(payload)
            recipe.pop("recover", None)
            handle.loads[name] = recipe
        return status, response

    def handle_unload(self, name: str) -> tuple[int, bytes]:
        handle = self.worker_for(name)
        status, response = self.forward("DELETE", f"/graphs/{name}", name, None)
        if status == 200:
            handle.loads.pop(name, None)
        return status, response

    def stamp_delta_id(self, body: bytes) -> bytes:
        """Ensure a proxied delta carries an idempotency id.

        The proxy retries after recovery (at-least-once delivery); the id
        lets the worker's durable queue dedupe the replayed copy, turning
        that into exactly-once application.  Client-supplied ids pass
        through untouched.
        """
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return body  # let the worker produce the real error message
        if not isinstance(payload, dict) or "id" in payload:
            return body
        payload["id"] = f"router-{uuid.uuid4().hex}"
        return json.dumps(payload).encode("utf-8")

    # -------------------------------------------------------- fleet reads
    def fleet(self) -> dict:
        """The worker listing ``repro top --router`` discovers targets from."""
        return {
            "n_workers": self.n_workers,
            "host": self.host,
            "queue_dir": str(self.queue_dir),
            "workers": [handle.describe() for handle in self.workers],
        }

    def health(self) -> tuple[dict, bool]:
        """Fleet health: 200 only while every worker is up and healthy."""
        problems: list[str] = []
        workers = []
        for handle in self.workers:
            state = handle.describe()
            if not handle.alive:
                problems.append(f"worker {handle.index} is down")
                state["healthz"] = None
            else:
                try:
                    status, body = self._raw_request(
                        handle, "GET", "/healthz", None, timeout=2.0
                    )
                    state["healthz"] = json.loads(body.decode("utf-8"))
                    if status != 200:
                        for problem in state["healthz"].get("problems", []):
                            problems.append(
                                f"worker {handle.index}: {problem}"
                            )
                except (OSError, http.client.HTTPException,
                        json.JSONDecodeError) as exc:
                    problems.append(
                        f"worker {handle.index} health probe failed: {exc}"
                    )
                    state["healthz"] = None
            workers.append(state)
        payload = {
            "role": "router",
            "n_workers": self.n_workers,
            "workers": workers,
            "problems": problems,
            "ok": not problems,
        }
        return payload, not problems

    def metrics_text(self) -> str:
        """Federated ``/metrics``: every worker's registry + the router's.

        Each worker's series gain an ``instance`` label (its authority),
        the router's own gain ``instance="router"`` — counters sum across
        the fleet by construction, exactly like PR 8's multi-endpoint
        ``repro top``.
        """
        labeled = [
            label_snapshot(self.registry.snapshot(), instance="router")
        ]
        for handle in self.workers:
            if not handle.alive:
                continue
            try:
                _, body = self._raw_request(
                    handle, "GET", "/metrics", None, timeout=2.0
                )
                snapshot = parse_prometheus(body.decode("utf-8"))
            except (OSError, http.client.HTTPException, ValueError):
                continue  # a scrape miss must not fail the endpoint
            labeled.append(
                label_snapshot(snapshot, instance=f"{handle.host}:{handle.port}")
            )
        return obs.render_prometheus([federate_snapshots(labeled)])

    def quality(self) -> dict:
        """Fleet-aggregated model quality across every worker.

        Each session lives on exactly one worker, so the per-graph
        payloads concatenate disjointly; the fleet rollup pools the
        prequential counts (example-weighted accuracy) and takes the
        worst drift, matching the worker-level rollup semantics.
        """
        graphs: dict = {}
        workers = []
        scored = correct = 0
        drift_values: list[float] = []
        for handle in self.workers:
            state = {"index": handle.index, "alive": handle.alive}
            if handle.alive:
                try:
                    _, body = self._raw_request(
                        handle, "GET", "/quality", None, timeout=5.0
                    )
                    payload = json.loads(body.decode("utf-8"))
                except (OSError, http.client.HTTPException,
                        json.JSONDecodeError):
                    payload = None
                if payload is not None:
                    graphs.update(payload.get("graphs", {}))
                    scored += int(payload.get("scored") or 0)
                    correct += int(payload.get("correct") or 0)
                    drift = payload.get("max_drift")
                    if drift is not None:
                        drift_values.append(float(drift))
                    state["scored"] = payload.get("scored")
                    state["accuracy"] = payload.get("accuracy")
                    state["max_drift"] = payload.get("max_drift")
            workers.append(state)
        return {
            "role": "router",
            "n_workers": self.n_workers,
            "workers": workers,
            "graphs": graphs,
            "scored": scored,
            "correct": correct,
            "accuracy": (correct / scored) if scored else None,
            "max_drift": max(drift_values) if drift_values else None,
        }

    def stats(self) -> dict:
        """Router tallies plus each worker's own ``/stats`` payload."""
        workers = []
        for handle in self.workers:
            state = handle.describe()
            if handle.alive:
                try:
                    _, body = self._raw_request(
                        handle, "GET", "/stats", None, timeout=5.0
                    )
                    state["stats"] = json.loads(body.decode("utf-8"))
                except (OSError, http.client.HTTPException,
                        json.JSONDecodeError):
                    state["stats"] = None
            else:
                state["stats"] = None
            workers.append(state)
        return {
            "role": "router",
            "uptime_seconds": time.time() - self.started_at,
            "n_workers": self.n_workers,
            "proxied": int(self._c_proxied.value),
            "recoveries": int(self._c_recoveries.value),
            "retries": int(self._c_retries.value),
            "workers": workers,
        }


# ------------------------------------------------------------- HTTP front
class RouterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the router for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: Router,
                 log_json: bool = False) -> None:
        super().__init__(address, RouterHandler)
        self.router = router
        self.log_json = log_json

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.router.close()


class RouterHandler(BaseHTTPRequestHandler):
    """Same JSON surface as a worker, plus ``/fleet``."""

    server: RouterHTTPServer
    protocol_version = "HTTP/1.1"
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ I/O
    def _send_body(self, body: bytes, content_type: str, status: int) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._send_body(
            json.dumps(payload).encode("utf-8"), "application/json", status
        )

    def _send_error_json(self, message: str, status: int) -> None:
        self.close_connection = True
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServeError(f"invalid Content-Length header: {exc}") from exc
        if length < 0:
            raise ServeError("invalid Content-Length header")
        return self.rfile.read(length) if length else b""

    # -------------------------------------------------------------- routing
    def _route(self, method: str) -> None:
        try:
            handled = self._dispatch(method)
        except ServeError as exc:
            self._send_error_json(str(exc), exc.status)
            return
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            return
        except Exception as exc:  # pragma: no cover - defensive catch-all
            self._send_error_json(f"internal error: {exc}", 500)
            return
        if not handled:
            self._send_error_json(f"no route for {method} {self.path}", 404)

    def _dispatch(self, method: str) -> bool:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        router = self.server.router
        if method == "GET":
            if parts == ["healthz"]:
                payload, ok = router.health()
                self._send_json(payload, status=200 if ok else 503)
                return True
            if parts == ["fleet"]:
                self._send_json(router.fleet())
                return True
            if parts == ["stats"]:
                self._send_json(router.stats())
                return True
            if parts == ["quality"]:
                self._send_json(router.quality())
                return True
            if parts == ["metrics"]:
                self._send_body(
                    router.metrics_text().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8", 200,
                )
                return True
            if len(parts) >= 2 and parts[0] == "graphs":
                status, body = router.forward(
                    "GET", self.path, parts[1], None
                )
                self._send_body(body, "application/json", status)
                return True
            return False
        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "graphs":
                status, body = router.handle_unload(parts[1])
                self._send_body(body, "application/json", status)
                return True
            return False
        if method != "POST":
            return False
        if parts == ["graphs"]:
            raw = self._read_body()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ServeError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ServeError("request body must be a JSON object")
            status, body = router.handle_load(payload)
            self._send_body(body, "application/json", status)
            return True
        if len(parts) == 3 and parts[0] == "graphs":
            name, verb = parts[1], parts[2]
            body = self._read_body()
            if verb == "delta":
                body = router.stamp_delta_id(body)
            status, response = router.forward("POST", self.path, name, body)
            self._send_body(response, "application/json", status)
            return True
        return False

    # ----------------------------------------------------------- verb hooks
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


def make_router_server(
    router: Router, host: str = "127.0.0.1", port: int = 8151,
    log_json: bool = False,
) -> RouterHTTPServer:
    """Bind the router endpoint (``port=0`` picks a free port for tests)."""
    return RouterHTTPServer((host, port), router, log_json=log_json)
