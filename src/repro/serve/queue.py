"""Durable per-session delta queues: acked writes survive a worker kill.

The serving tier acknowledges a delta as soon as it is **durable and
applied to the graph**, before the (much slower) belief propagation runs.
That promise only holds across a ``kill -9`` if the delta is on disk first:
:class:`DeltaQueue` keeps one append-only JSONL file per served session,
written with the same single-``write(2)``-on-``O_APPEND`` + shared-``flock``
discipline as the runner's JSONL store backend — concurrent appenders
interleave whole records, never bytes, and the only tolerated damage is a
torn *final* line (a writer killed mid-append, which by definition was
never acknowledged).

The queue is the session's **redo log**: it records every delta accepted
since the session's load, in acceptance order.  Recovery (a router
re-placing the session on a fresh worker, or a worker reloading an
LRU-evicted session) replays the file on top of a reload-from-source and
lands on the same graph version the last acknowledgement named.

Records are ``{"seq": n, "delta": {...}}`` with an optional client-supplied
``"id"``.  Ids make retries idempotent: a router that re-sends a delta
after a worker died mid-request cannot double-apply it — the queue
remembers recently seen ids (rebuilt from the file on replay) and reports
the original sequence number instead of appending again.  The dedupe set
is LRU-bounded (``max_seen_ids``) so a long-lived session cannot grow it
without limit: retries arrive within seconds of the original, so evicting
the oldest ids is safe, and evictions are counted on the
``repro_queue_seen_ids_evicted_total`` metric in case a deployment ever
needs a bigger cap.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path

from repro import obs

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

__all__ = ["DEFAULT_MAX_SEEN_IDS", "DeltaQueue", "QueueCorruptionError"]

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]")

# Default LRU cap on the per-session id-dedupe map.  Ids exist to absorb
# router retries, which follow the original request within seconds — by
# the time 10k newer deltas have landed, a duplicate of an older one can
# only be a replayed log (handled separately), not a retry.
DEFAULT_MAX_SEEN_IDS = 10_000


class QueueCorruptionError(RuntimeError):
    """A queue file is damaged somewhere other than its final line."""


def _filename(session: str) -> str:
    # Session names are validated by the service (non-empty, no '/') but the
    # queue must never trust them as raw path components.
    return _SAFE_NAME.sub("_", session) + ".deltas.jsonl"


class _SessionLog:
    """In-memory view of one session's on-disk queue file."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.next_seq = 1
        self.seen_ids: dict[str, int] = {}  # client id -> seq it landed as
        # (byte offset, bytes to EOF) of a torn final line replay() found,
        # repaired by the next append instead of being extended.
        self.truncated_tail: tuple[int, bytes] | None = None


class DeltaQueue:
    """Directory of per-session JSONL redo logs.

    Parameters
    ----------
    directory:
        Where the ``<session>.deltas.jsonl`` files live.  Created on
        demand.  A router shares one directory across all its workers, so
        a session's log survives the worker that wrote it.
    max_seen_ids:
        LRU cap on each session's in-memory id-dedupe map (the on-disk
        log is never touched).  ``None`` disables the bound.
    """

    def __init__(self, directory, max_seen_ids: int | None = DEFAULT_MAX_SEEN_IDS) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if max_seen_ids is not None and max_seen_ids < 1:
            raise ValueError(f"max_seen_ids must be >= 1, got {max_seen_ids}")
        self.max_seen_ids = max_seen_ids
        self._logs: dict[str, _SessionLog] = {}
        self._lock = threading.Lock()
        self._c_evicted = obs.metrics().counter(
            "repro_queue_seen_ids_evicted_total",
            "Delta ids dropped from the LRU-bounded dedupe map.",
        )

    def _evict_seen_ids(self, log: _SessionLog) -> None:
        """Drop oldest ids past the cap (dicts iterate in insertion order)."""
        if self.max_seen_ids is None:
            return
        excess = len(log.seen_ids) - self.max_seen_ids
        if excess <= 0:
            return
        for delta_id in list(log.seen_ids)[:excess]:
            del log.seen_ids[delta_id]
        self._c_evicted.inc(excess)

    # ---------------------------------------------------------------- paths
    def path_for(self, session: str) -> Path:
        return self.directory / _filename(session)

    def _log(self, session: str) -> _SessionLog:
        with self._lock:
            log = self._logs.get(session)
            if log is None:
                log = _SessionLog(self.path_for(session))
                self._logs[session] = log
            return log

    # --------------------------------------------------------------- append
    def append(self, session: str, delta: dict, delta_id: str | None = None) -> int:
        """Durably append one delta record; returns its sequence number.

        The record is on disk (one ``O_APPEND`` write under a shared
        ``flock``) before this returns — the caller may acknowledge the
        delta afterwards.  A ``delta_id`` already appended returns the
        sequence number it originally landed as, without writing again.
        """
        log = self._log(session)
        if delta_id is not None:
            delta_id = str(delta_id)
        with self._lock:
            if delta_id is not None and delta_id in log.seen_ids:
                # LRU refresh: a retried id stays hot while it is in use.
                seq = log.seen_ids.pop(delta_id)
                log.seen_ids[delta_id] = seq
                return seq
            if log.truncated_tail is not None:
                self._repair_truncated_tail(log)
            seq = log.next_seq
            record: dict = {"seq": seq, "delta": delta}
            if delta_id is not None:
                record["id"] = delta_id
            payload = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            descriptor = os.open(
                log.path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                if fcntl is not None:
                    fcntl.flock(descriptor, fcntl.LOCK_SH)
                # Start on a fresh line if a killed sibling left a torn tail
                # (same guard as the JSONL store backend) — the damage stays
                # confined to the one line replay already tolerates.
                size = os.fstat(descriptor).st_size
                if (
                    size > 0
                    and hasattr(os, "pread")
                    and os.pread(descriptor, 1, size - 1) != b"\n"
                ):
                    payload = b"\n" + payload
                written = os.write(descriptor, payload)
            finally:
                os.close(descriptor)
            if written != len(payload):  # pragma: no cover - local fs
                raise OSError(
                    f"short append to {log.path}: {written}/{len(payload)} bytes"
                )
            log.next_seq = seq + 1
            if delta_id is not None:
                log.seen_ids[delta_id] = seq
                self._evict_seen_ids(log)
            return seq

    @staticmethod
    def _repair_truncated_tail(log: _SessionLog) -> None:
        """Truncate the torn final line replay() saw, if still untouched.

        The torn record was by definition never acknowledged (the write(2)
        did not complete), so removing it loses nothing.  Verify-and-
        truncate runs under an exclusive ``flock`` so a repairer cannot chop
        off a record a concurrent appender just committed past the tail.
        """
        tail_offset, tail_bytes = log.truncated_tail
        log.truncated_tail = None
        descriptor = os.open(log.path, os.O_RDWR)
        try:
            if fcntl is not None:
                fcntl.flock(descriptor, fcntl.LOCK_EX)
            size = os.fstat(descriptor).st_size
            if size != tail_offset + len(tail_bytes):
                return
            os.lseek(descriptor, tail_offset, os.SEEK_SET)
            if os.read(descriptor, len(tail_bytes)) != tail_bytes:
                return
            os.ftruncate(descriptor, tail_offset)
        finally:
            os.close(descriptor)

    # --------------------------------------------------------------- replay
    def replay(self, session: str) -> list[tuple[int, dict]]:
        """Read a session's redo log: ``[(seq, delta_dict), ...]`` in order.

        Tolerates exactly one undecodable *final* line (a writer killed
        mid-append — that delta was never acknowledged); an undecodable
        line followed by valid records raises
        :class:`QueueCorruptionError`, because silently skipping it would
        drop an acknowledged write.  Also primes the in-memory state so
        subsequent :meth:`append` calls continue the sequence and keep
        id-dedupe working across a reload.
        """
        log = self._log(session)
        entries: list[tuple[int, dict]] = []
        seen: dict[str, int] = {}
        path = log.path
        truncated: tuple[int, bytes] | None = None
        if path.exists():
            # (line number, byte offset, raw bytes to EOF, error detail) of
            # an undecodable line that MAY be a tolerated torn tail.
            bad: tuple[int, int, bytes, str] | None = None
            offset = 0
            with path.open("rb") as handle:
                for number, raw in enumerate(handle, start=1):
                    line_offset = offset
                    offset += len(raw)
                    stripped = raw.strip()
                    if not stripped:
                        if bad is not None:
                            bad = (bad[0], bad[1], bad[2] + raw, bad[3])
                        continue
                    if bad is not None:
                        raise QueueCorruptionError(
                            f"{path}: undecodable record at line {bad[0]} "
                            f"({bad[3]}) with intact records after it — "
                            "mid-file corruption, not a torn append"
                        )
                    try:
                        record = json.loads(stripped.decode("utf-8"))
                        seq = int(record["seq"])
                        delta = record["delta"]
                        if not isinstance(delta, dict):
                            raise ValueError("delta payload is not an object")
                    except (ValueError, KeyError, TypeError,
                            UnicodeDecodeError) as exc:
                        bad = (number, line_offset, raw, str(exc))
                        continue
                    entries.append((seq, delta))
                    if "id" in record:
                        seen[str(record["id"])] = seq
            if bad is not None:
                truncated = (bad[1], bad[2])
        with self._lock:
            log.next_seq = (entries[-1][0] + 1) if entries else 1
            log.seen_ids = seen
            # The file may hold more ids than the cap allows in memory;
            # keep the most recent ones (insertion order == log order).
            self._evict_seen_ids(log)
            log.truncated_tail = truncated
        return entries

    # ------------------------------------------------------------ lifecycle
    def drop(self, session: str) -> None:
        """Delete a session's redo log (fresh load or explicit unload)."""
        with self._lock:
            log = self._logs.pop(session, None)
        path = log.path if log is not None else self.path_for(session)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def depth(self, session: str) -> int:
        """Records appended so far (next_seq - 1) per the in-memory view."""
        return self._log(session).next_seq - 1

    def seen(self, session: str, delta_id) -> int | None:
        """The sequence number a client id already landed as, or None.

        Only consults the in-memory view (primed by :meth:`replay` after a
        restart) — the dedupe check must not cost a file scan per delta.
        """
        log = self._log(session)
        with self._lock:
            seq = log.seen_ids.pop(str(delta_id), None)
            if seq is not None:
                log.seen_ids[str(delta_id)] = seq  # LRU refresh
            return seq

    def sessions(self) -> list[str]:
        """Session names with a redo log on disk (filename-mangled form)."""
        suffix = ".deltas.jsonl"
        return sorted(
            entry.name[: -len(suffix)]
            for entry in self.directory.iterdir()
            if entry.name.endswith(suffix)
        )

    def has_log(self, session: str) -> bool:
        return self.path_for(session).exists()
