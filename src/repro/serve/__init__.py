"""Online inference service: micro-batched queries over warm streaming sessions.

The fourth subsystem of the reproduction, closing the loop from batch
experiments to *serving*:

* :mod:`repro.serve.service` — :class:`InferenceService`, a registry of
  named :class:`~repro.stream.session.StreamingSession` objects answering
  belief queries with staleness metadata and absorbing
  :class:`~repro.stream.delta.GraphDelta` batches with one propagation each;
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`, the bounded queue
  that coalesces concurrent queries into one vectorized lookup and
  concurrent deltas into one incremental propagation (max-latency flush);
* :mod:`repro.serve.cache` — :class:`QueryCache`, the per-session top-k /
  argmax result cache invalidated by delta application;
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` JSON API
  behind ``repro serve``;
* :mod:`repro.serve.loader` — graph loading from ``.npz`` bundles or
  runner-store records, shared with ``repro stream --from-store``;
* :mod:`repro.serve.queue` — :class:`DeltaQueue`, the flock-safe JSONL
  redo log that makes delta acknowledgements durable across ``kill -9``;
* :mod:`repro.serve.router` — :class:`Router`, the horizontal tier:
  a worker pool with deterministic session placement, supervision,
  crash recovery (reload + redo-log replay), and federated ``/metrics``
  behind ``repro serve --workers N``.

Quickstart::

    from repro.serve import InferenceService, MicroBatcher

    service = InferenceService()
    service.load_graph("demo", path="graph.npz", propagator="linbp")
    result = service.query("demo", nodes=[0, 17, 42], top_k=2)
    print(result.labels, result.staleness)

    with MicroBatcher(service) as batcher:      # coalescing front-end
        futures = [batcher.submit_query("demo", [n]) for n in range(64)]
        answers = [future.result() for future in futures]

The CLI equivalent is ``repro serve graph.npz --port 8151``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import QueryCache
from repro.serve.http import InferenceHTTPServer, make_server
from repro.serve.loader import (
    GraphSourceError,
    graph_from_store,
    load_serving_graph,
    resolve_store_record,
)
from repro.serve.queue import DeltaQueue, QueueCorruptionError
from repro.serve.router import Router, RouterHTTPServer, make_router_server
from repro.serve.service import (
    DeltaBatchResult,
    InferenceService,
    QueryResult,
    ServeError,
    UnknownGraphError,
)

__all__ = [
    "DeltaBatchResult",
    "DeltaQueue",
    "GraphSourceError",
    "InferenceHTTPServer",
    "InferenceService",
    "MicroBatcher",
    "QueryCache",
    "QueryResult",
    "QueueCorruptionError",
    "Router",
    "RouterHTTPServer",
    "ServeError",
    "UnknownGraphError",
    "graph_from_store",
    "load_serving_graph",
    "make_router_server",
    "make_server",
    "resolve_store_record",
]
