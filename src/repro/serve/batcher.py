"""Micro-batching front-end: coalesce concurrent queries and deltas.

Serving traffic arrives one request at a time, but the service's cheapest
unit of work is a *batch*: :meth:`InferenceService.query_many` answers N
queries with one vectorized belief gather, and
:meth:`InferenceService.apply_deltas` absorbs N deltas with a single
incremental propagation.  :class:`MicroBatcher` bridges the two — callers
submit individual requests and get futures; a single worker thread drains
the queue and hands the service coalesced batches.

Flush policy (the classic request-batching trade-off):

* a flush happens at the latest ``max_latency_seconds`` after the oldest
  pending item arrived — an isolated request is never delayed longer than
  the latency budget;
* a flush happens immediately once ``max_batch`` items are pending — heavy
  load degrades into back-to-back full batches, never unbounded queues.

Ordering/consistency: within one flush, **deltas are applied before any
query is answered**.  A query therefore reflects every delta acknowledged
before it was submitted (monotonic reads — it sat behind them in the queue
or they were already flushed) and *may* additionally reflect deltas
submitted concurrently with it (fresh reads).  What can never happen is a
query being answered from beliefs older than its submission point.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

from repro import obs
from repro.serve.service import InferenceService, QueryResult, ServeError

__all__ = ["MicroBatcher"]


@dataclass
class _Pending:
    kind: str  # "query" | "delta"
    graph: str
    # query: (nodes, top_k, min_version); delta: (delta, ack, delta_id)
    payload: tuple
    future: Future
    # Submitter's trace context, captured on the caller's thread so the
    # flush (on the worker thread) can parent its span to the request.
    ctx: object = None


class MicroBatcher:
    """Bounded-queue request coalescer in front of one :class:`InferenceService`.

    Parameters
    ----------
    service:
        The service every flushed batch is executed against.
    max_batch:
        Flush as soon as this many requests are pending.
    max_latency_seconds:
        Flush at the latest this long after the oldest pending request
        arrived — the worst-case queueing delay added by batching.
    max_queue:
        Backpressure bound: ``submit_*`` raises once this many requests
        are waiting (a stalled propagation must not buffer unbounded work).
    start:
        Start the worker thread immediately.  Tests pass ``False`` and
        drive :meth:`flush_pending` by hand to make coalescing
        deterministic.
    """

    def __init__(
        self,
        service: InferenceService,
        max_batch: int = 128,
        max_latency_seconds: float = 0.002,
        max_queue: int = 65536,
        start: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_seconds < 0:
            raise ValueError("max_latency_seconds must be >= 0")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_latency_seconds = float(max_latency_seconds)
        self.max_queue = int(max_queue)
        self._queue: deque[_Pending] = deque()
        self._condition = threading.Condition()
        self._stopped = False
        self._worker: threading.Thread | None = None
        # Tallies (updated only by the flushing thread).
        self.n_flushes = 0
        self.n_queries = 0
        self.n_deltas = 0
        self.n_query_batches = 0
        self.n_delta_batches = 0
        self.largest_batch = 0
        # Registry mirrors of the flush behavior (the tallies above stay
        # authoritative for stats(); these feed /metrics).
        registry = service.registry
        self._g_queue_depth = registry.gauge(
            "repro_batcher_queue_depth", "Requests waiting in the batcher queue."
        )
        self._c_flushes = registry.counter(
            "repro_batcher_flushes_total", "Batcher flush cycles executed."
        )
        self._h_flush_size = registry.histogram(
            "repro_batcher_flush_size", "Requests drained per flush cycle.",
            buckets=obs.SIZE_BUCKETS,
        )
        self._c_items = {
            kind: registry.counter(
                "repro_batcher_items_total",
                "Requests flushed through the batcher, by kind.",
                kind=kind,
            )
            for kind in ("query", "delta")
        }
        # items_total / batches_total per kind = the coalesce ratio.
        self._c_batches = {
            kind: registry.counter(
                "repro_batcher_batches_total",
                "Coalesced service calls issued by the batcher, by kind.",
                kind=kind,
            )
            for kind in ("query", "delta")
        }
        if start:
            self.start()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the background flushing thread (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stopped = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker after it drains everything already queued."""
        with self._condition:
            self._stopped = True
            self._condition.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=timeout)
            self._worker = None
        # Anything still queued (worker died, never started, or is stuck
        # past the join timeout) must not leave callers blocked on their
        # futures forever.  Drain under the lock: items taken here were
        # never seen by a still-live worker (it pops under the same lock),
        # so this thread is their sole owner.
        with self._condition:
            abandoned = list(self._queue)
            self._queue.clear()
        for pending in abandoned:
            pending.future.set_exception(
                ServeError("batcher closed before the request ran", status=503)
            )

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ submission
    def _submit(self, kind: str, graph: str, payload: tuple) -> Future:
        future: Future = Future()
        # Captured on the submitting thread: the flush runs on the worker
        # thread, where the contextvar chain back to this request is gone.
        ctx = obs.capture_context() if obs.tracing_active() else None
        with self._condition:
            if self._stopped:
                raise ServeError("batcher is closed", status=503)
            if len(self._queue) >= self.max_queue:
                raise ServeError(
                    f"batcher queue is full ({self.max_queue} pending)",
                    status=503,
                )
            self._queue.append(_Pending(kind, graph, payload, future, ctx))
            depth = len(self._queue)
            self._condition.notify()
        self._g_queue_depth.set(depth)
        return future

    def submit_query(
        self, graph: str, nodes, top_k: int | None = None,
        min_version: int | None = None,
    ) -> Future:
        """Enqueue a query; the future resolves to a :class:`QueryResult`.

        ``min_version`` is a read-your-writes token from an earlier delta
        acknowledgement: the answer reflects at least that graph version
        (or fails with status 412 when the token outruns the session).
        """
        return self._submit("query", graph, (nodes, top_k, min_version))

    def submit_delta(
        self, graph: str, delta, ack: str = "propagated",
        delta_id: str | None = None,
    ) -> Future:
        """Enqueue a delta; the future resolves once a flush handled it.

        The result is a :class:`~repro.serve.service.DeltaBatchResult`
        scoped to this one delta (``n_deltas == 1``; ``n_coalesced`` tells
        how many siblings shared the propagation), or the future carries a
        ``ServeError`` when the delta was rejected.

        ``ack="propagated"`` (the default) resolves after the coalesced
        belief refresh; ``ack="applied"`` resolves as soon as the delta is
        applied and durably logged — the refresh is deferred to the next
        eager flush or to the next query (read-your-writes still holds).
        A flush mixing both modes propagates eagerly: a deferred sibling
        just gets its answer sooner than it asked for.  ``delta_id`` makes
        retries idempotent through the service's durable queue.
        """
        if ack not in ("propagated", "applied"):
            raise ServeError(
                f"ack must be 'propagated' or 'applied', got {ack!r}"
            )
        return self._submit("delta", graph, (delta, ack, delta_id))

    def query(
        self, graph: str, nodes, top_k: int | None = None,
        min_version: int | None = None, timeout: float | None = 30.0,
    ) -> QueryResult:
        """Submit a query and wait for its micro-batched answer."""
        return self.submit_query(
            graph, nodes, top_k, min_version
        ).result(timeout=timeout)

    def apply_delta(
        self, graph: str, delta, ack: str = "propagated",
        delta_id: str | None = None, timeout: float | None = 30.0,
    ) -> dict:
        """Submit a delta and wait until a flush has handled it."""
        return self.submit_delta(
            graph, delta, ack=ack, delta_id=delta_id
        ).result(timeout=timeout)

    # -------------------------------------------------------------- flushing
    def _run(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._stopped:
                    self._condition.wait()
                if not self._queue and self._stopped:
                    return
                # Linger so concurrent callers can pile on, but only while
                # the queue is actually growing: closed-loop clients all
                # submit within microseconds of their previous answers, so
                # once a settle slice passes with no new arrivals the batch
                # is as big as it is going to get and waiting out the full
                # latency budget would just cap throughput at
                # clients/budget.  The budget stays the hard bound for
                # staggered arrivals.
                deadline = time.monotonic() + self.max_latency_seconds
                # A settle slice only needs to cover the submit-after-wakeup
                # gap of a closed-loop client (tens of microseconds), not a
                # fraction of the latency budget.
                settle = min(2.5e-4, self.max_latency_seconds / 4.0)
                while (
                    len(self._queue) < self.max_batch
                    and not self._stopped
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    size_before = len(self._queue)
                    self._condition.wait(timeout=min(settle, remaining))
                    if len(self._queue) == size_before:
                        break
            self.flush_pending()

    def flush_pending(self) -> int:
        """Drain and execute everything currently queued; returns the count.

        Public so tests (and the benchmark's calibration path) can drive
        batching synchronously with ``start=False``.
        """
        with self._condition:
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch))
            ]
        if not batch:
            return 0
        self.n_flushes += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        self._c_flushes.inc()
        self._h_flush_size.observe(len(batch))
        self._g_queue_depth.set(len(self._queue))

        # Per graph: all deltas first (one propagation), then all queries
        # (one vectorized gather) — the freshness contract documented above.
        deltas: dict[str, list[_Pending]] = {}
        queries: dict[str, list[_Pending]] = {}
        for pending in batch:
            group = deltas if pending.kind == "delta" else queries
            group.setdefault(pending.graph, []).append(pending)

        for graph, pendings in deltas.items():
            self.n_deltas += len(pendings)
            self.n_delta_batches += 1
            self._c_items["delta"].inc(len(pendings))
            self._c_batches["delta"].inc()
            call_start = time.perf_counter()
            try:
                # One deferred-mode sibling cannot hold eager callers back:
                # the flush propagates if ANY caller asked for a propagated
                # ack, and defers only when every sibling opted out.
                propagate = any(
                    pending.payload[1] == "propagated" for pending in pendings
                )
                outcome = self.service.apply_deltas(
                    graph,
                    [pending.payload[0] for pending in pendings],
                    propagate=propagate,
                    delta_ids=[pending.payload[2] for pending in pendings],
                )
            except Exception as exc:
                for pending in pendings:
                    pending.future.set_exception(exc)
                continue
            self._emit_flush_spans("delta", graph, pendings, call_start)
            for position, pending in enumerate(pendings):
                error = outcome.errors[position]
                if error is None:
                    # Each caller submitted ONE delta and gets a result
                    # scoped to it (n_deltas=1, its own token), so a
                    # single-delta POST reports the same shape whether or
                    # not siblings were coalesced into the flush;
                    # n_coalesced carries the shared-propagation count.
                    pending.future.set_result(outcome.scoped_to_one(position))
                else:
                    pending.future.set_exception(
                        ServeError(f"delta rejected: {error}")
                    )

        for graph, pendings in queries.items():
            self.n_queries += len(pendings)
            self.n_query_batches += 1
            self._c_items["query"].inc(len(pendings))
            self._c_batches["query"].inc()
            call_start = time.perf_counter()
            try:
                results = self.service.query_many(
                    graph,
                    [(pending.payload[0], pending.payload[1],
                      pending.payload[2])
                     for pending in pendings],
                )
            except Exception as exc:
                for pending in pendings:
                    pending.future.set_exception(exc)
                continue
            self._emit_flush_spans("query", graph, pendings, call_start)
            for pending, result in zip(pendings, results):
                if isinstance(result, Exception):
                    pending.future.set_exception(result)
                else:
                    pending.future.set_result(result)
        return len(batch)

    @staticmethod
    def _emit_flush_spans(kind: str, graph: str, pendings, call_start: float) -> None:
        """Attribute the coalesced service call to each submitter's trace.

        Every caller whose request shared this flush gets one span, parented
        to the context captured at submit time — this is the hop that keeps
        request trees intact across the queue -> worker-thread boundary.
        """
        if not obs.tracing_active():
            return
        seconds = time.perf_counter() - call_start
        for pending in pendings:
            obs.emit_span(
                f"batcher.flush_{kind}", seconds, parent=pending.ctx,
                graph=graph, coalesced=len(pendings),
            )

    # ----------------------------------------------------------------- stats
    def saturation(self) -> dict:
        """Queue fill state for ``GET /healthz`` (1.0 = submits rejected)."""
        with self._condition:
            depth = len(self._queue)
        return {
            "queue_depth": depth,
            "max_queue": self.max_queue,
            "saturation": depth / self.max_queue,
        }

    def stats(self) -> dict:
        """Coalescing tallies for the ``/stats`` endpoint."""
        flushes = max(1, self.n_flushes)
        return {
            "n_flushes": self.n_flushes,
            "n_queries": self.n_queries,
            "n_deltas": self.n_deltas,
            "n_query_batches": self.n_query_batches,
            "n_delta_batches": self.n_delta_batches,
            "largest_batch": self.largest_batch,
            "mean_batch_size": (self.n_queries + self.n_deltas) / flushes,
            "propagations_saved": self.n_deltas - self.n_delta_batches,
            "pending": len(self._queue),
            "max_batch": self.max_batch,
            "max_latency_seconds": self.max_latency_seconds,
        }
