"""Per-session query-result cache, invalidated by delta application.

Serving traffic is repetitive: dashboards poll the same node sets, hot
entities are queried by many clients, and between two deltas the belief
matrix does not move — so the answer to ``(nodes, top_k)`` is a pure
function of the session's *belief version* (the count of completed
propagations).  :class:`QueryCache` memoizes exactly that function:

* entries are keyed by the caller's hashable query key and stamped with the
  belief version they were computed at;
* applying a delta bumps the version, which implicitly invalidates the whole
  cache — the first access at a newer version clears it in O(1) bookkeeping
  (the dict is dropped wholesale, no per-entry scan);
* an LRU bound (``max_entries``) keeps one-off node sets from growing the
  cache without limit.

The cache itself is not locked: callers access it while already holding the
session lock (the serving layer's invariant), so no extra synchronization
is layered on top.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["QueryCache"]


class QueryCache:
    """Version-stamped LRU cache of query results for one served session."""

    def __init__(
        self, max_entries: int = 1024, hit_counter=None, miss_counter=None
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._version: int | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Optional repro.obs counters mirroring hits/misses onto the metrics
        # registry.  The plain integer tallies above stay authoritative for
        # stats() — they must keep counting even when obs is disabled.
        self._hit_counter = hit_counter
        self._miss_counter = miss_counter

    def __len__(self) -> int:
        return len(self._entries)

    def _sync_version(self, version: int) -> None:
        if version != self._version:
            if self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._version = version

    def get(self, key: Hashable, version: int):
        """Return the cached value for ``key`` at ``version`` (None on miss).

        A version different from the one the cache holds entries for drops
        everything first — results computed against older beliefs must
        never be served after a delta.
        """
        self._sync_version(version)
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()
        return value

    def put(self, key: Hashable, version: int, value) -> None:
        """Store ``value`` for ``key`` as computed at belief ``version``."""
        self._sync_version(version)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (explicit invalidation; version stamp survives)."""
        if self._entries:
            self.invalidations += 1
        self._entries.clear()

    def stats(self) -> dict:
        """Counters for the service's ``/stats`` endpoint."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "invalidations": self.invalidations,
        }
