"""Graph loading shared by the serving layer and ``repro stream --from-store``.

A served (or replayed) graph comes from one of two places:

* a ``.npz`` bundle written by :func:`repro.graph.io.save_graph_npz` — the
  interchange format of the whole CLI;
* a **runner-store record**: every record persisted by ``repro run`` embeds
  the full :class:`~repro.runner.spec.RunSpec`, whose graph config dict is
  enough to rebuild the exact graph the run executed on (same generator
  seed, same dataset scale).  :func:`graph_from_store` resolves a content
  hash (unique prefixes accepted) to its record and materializes that graph
  through :func:`repro.runner.spec.build_graph`.

Keeping this in one module means ``repro serve`` and
``repro stream --from-store`` cannot drift: both reconstruct a grid's graph
the same way.
"""

from __future__ import annotations

from pathlib import Path

from repro.graph.graph import Graph
from repro.graph.io import load_graph_npz
from repro.runner.spec import build_graph
from repro.runner.store import ResultStore

__all__ = [
    "GraphSourceError",
    "graph_from_store",
    "load_serving_graph",
    "resolve_store_record",
]


class GraphSourceError(ValueError):
    """The requested graph source does not resolve to a graph."""


def resolve_store_record(store: ResultStore | str | Path, run_hash: str) -> dict:
    """Find the store record whose content hash matches ``run_hash``.

    ``run_hash`` may be any unambiguous prefix of a stored SHA-256 hash
    (humans paste the first dozen characters from ``repro report``); an
    ambiguous or unknown prefix raises :class:`GraphSourceError` naming the
    candidates.
    """
    if not isinstance(store, ResultStore):
        path = Path(store)
        if not path.exists():
            raise GraphSourceError(f"result store not found: {path}")
        store = ResultStore(path)
    run_hash = str(run_hash)
    if not run_hash:
        raise GraphSourceError("empty run hash")
    matches = [key for key in store.hashes() if key.startswith(run_hash)]
    if not matches:
        raise GraphSourceError(
            f"no record with hash prefix {run_hash!r} in {store.results_path} "
            f"({len(store)} records)"
        )
    if len(matches) > 1:
        preview = ", ".join(key[:16] + "…" for key in matches[:4])
        raise GraphSourceError(
            f"hash prefix {run_hash!r} is ambiguous in {store.results_path}: "
            f"{len(matches)} matches ({preview})"
        )
    return store.get(matches[0])


def graph_from_store(
    store: ResultStore | str | Path, run_hash: str
) -> tuple[Graph, dict]:
    """Rebuild the graph a stored run executed on; returns ``(graph, record)``.

    The record's embedded spec carries the graph *config* (generator
    parameters, dataset name, or an ``.npz`` path), not the graph bytes —
    reconstruction is deterministic for ``generate``/``dataset`` kinds and
    re-reads the file for ``npz`` kind.
    """
    record = resolve_store_record(store, run_hash)
    spec = record.get("spec") or {}
    config = spec.get("graph")
    if not isinstance(config, dict):
        raise GraphSourceError(
            f"record {record.get('hash', '?')[:16]}… carries no graph config"
        )
    try:
        return build_graph(config), record
    except Exception as exc:
        raise GraphSourceError(
            f"could not rebuild graph for record "
            f"{record.get('hash', '?')[:16]}…: {exc}"
        ) from exc


def load_serving_graph(
    path=None,
    store=None,
    run_hash: str | None = None,
) -> Graph:
    """Materialize a graph from exactly one source: ``path`` or ``store``+hash."""
    if path is not None:
        if store is not None or run_hash is not None:
            raise GraphSourceError("pass either path or store+hash, not both")
        path = Path(path)
        if not path.exists():
            raise GraphSourceError(f"graph file not found: {path}")
        try:
            return load_graph_npz(path)
        except Exception as exc:
            raise GraphSourceError(f"could not read graph file {path}: {exc}") from exc
    if store is None or run_hash is None:
        raise GraphSourceError(
            "a graph source needs a .npz path, or a result store plus a "
            "record hash"
        )
    graph, _ = graph_from_store(store, run_hash)
    return graph
