"""Stdlib-only JSON HTTP front-end for the inference service.

A :class:`ThreadingHTTPServer` (one thread per connection, no third-party
dependencies) exposing:

* ``POST /graphs`` — load a graph: ``{"name": ..., "path": "g.npz"}`` or
  ``{"name": ..., "store": "runs/grid", "hash": "ab12…"}`` plus optional
  ``propagator`` / ``method`` / ``fraction`` / ``seed`` / ``iterations`` /
  ``tolerance`` / ``localized`` / ``replace``;
* ``DELETE /graphs/<name>`` — unload it;
* ``GET /graphs/<name>`` — its info/staleness snapshot;
* ``GET /graphs/<name>/stats`` — per-mode solve counts (full /
  incremental / localized) plus cumulative touched-nonzeros and the active
  kernel backend;
* ``GET /graphs/<name>/quality`` — model-quality telemetry (prequential
  accuracy, belief churn, calibration, compatibility drift) and
  ``GET /quality`` — the same for every resident graph plus an
  instance-level rollup;
* ``POST /graphs/<name>/delta`` — apply a delta (the JSONL event-record
  format of :meth:`repro.stream.delta.GraphDelta.from_dict`);
* ``POST /graphs/<name>/query`` — ``{"nodes": [...], "top_k": 2}`` →
  beliefs/labels/top-k plus staleness metadata;
* ``GET /stats`` — service- and batcher-wide counters;
* ``GET /metrics`` — the :mod:`repro.obs` registries in Prometheus text
  exposition format (the service registry plus the process-global one);
* ``GET /healthz`` — *real* health, not a constant: per-graph session
  liveness (anchoring solve completed), batcher queue saturation, and the
  attached SLO rules — 200 while everything holds, 503 naming the
  problems while anything is degraded (so a load balancer drains exactly
  the workers that are actually in trouble);
* ``GET /alerts`` — every SLO rule's latest :class:`RuleStatus`
  (``repro serve --slo spec.json`` attaches the spec to a background
  :class:`~repro.obs.timeseries.TimeSeriesRecorder`).

Every response carries an ``X-Repro-Trace`` header with the request's trace
id; when tracing is configured (``repro serve --trace``), the request span
and everything it caused — batcher flushes, engine solves — share that id,
so one header value greps the whole request tree out of the trace file.
With ``log_json`` enabled the handler emits one JSON object per request to
stderr (method, path, status, duration_ms, trace).

Queries and deltas are routed through the :class:`MicroBatcher` (when one
is attached), so concurrent HTTP clients are coalesced exactly like
in-process callers.  Every response is a JSON object; failures carry
``{"error": ...}`` with the mapped status code, never a traceback page.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.serve.batcher import MicroBatcher
from repro.serve.service import InferenceService, ServeError

__all__ = ["InferenceHTTPServer", "ServeHandler", "make_server"]

MAX_BODY_BYTES = 64 * 1024 * 1024  # a delta with millions of edges is a bug


class InferenceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service + batcher for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    # Queue saturation past this fraction degrades /healthz: submits are
    # about to be rejected, a balancer should stop sending work here.
    queue_degraded_fraction = 0.9

    def __init__(
        self,
        address: tuple[str, int],
        service: InferenceService,
        batcher: MicroBatcher | None = None,
        log_json: bool = False,
        recorder=None,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.batcher = batcher
        self.log_json = log_json
        # A TimeSeriesRecorder (usually with an SloSpec attached) backing
        # /healthz degradation and /alerts; owned by whoever built it.
        self.recorder = recorder

    def close(self) -> None:
        """Shut down the listener, the batcher, and the SLO recorder."""
        self.shutdown()
        self.server_close()
        if self.batcher is not None:
            self.batcher.close()
        if self.recorder is not None:
            self.recorder.stop()

    def health(self) -> tuple[dict, bool]:
        """``(payload, ok)`` composing every degradation signal."""
        problems: list[str] = []
        graphs = self.service.health()
        for name, state in sorted(graphs.items()):
            if not state["live"]:
                problems.append(f"graph {name!r} has no belief snapshot yet")
        payload: dict = {"graphs": graphs}
        if self.batcher is not None:
            queue = self.batcher.saturation()
            payload["batcher"] = queue
            if queue["saturation"] >= self.queue_degraded_fraction:
                problems.append(
                    f"batcher queue saturated "
                    f"({queue['queue_depth']}/{queue['max_queue']})"
                )
        if self.recorder is not None:
            firing = self.recorder.firing()
            payload["slo"] = {
                "rules": len(self.recorder.statuses()),
                "firing": [status.name for status in firing],
            }
            for status in firing:
                problems.append(f"SLO {status.name}: {status.detail}")
        payload["problems"] = problems
        payload["ok"] = not problems
        return payload, not problems


class ServeHandler(BaseHTTPRequestHandler):
    """Routes the five endpoints; all payloads are JSON."""

    server: InferenceHTTPServer
    protocol_version = "HTTP/1.1"
    # Quiet by default: one line per request at 10k qps would *be* the load.
    verbose = False

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ I/O
    def _send_body(self, body: bytes, content_type: str, status: int) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Trace", self._trace_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(body, "application/json", status)

    def _send_text(self, text: str, content_type: str, status: int = 200) -> None:
        self._send_body(text.encode("utf-8"), content_type, status)

    def _send_error_json(self, message: str, status: int) -> None:
        # Error paths may not have consumed the request body (unmatched
        # route, too-large guard); leftover bytes would desynchronize a
        # kept-alive HTTP/1.1 connection — the next "request" would be
        # parsed out of the old body.  Dropping the connection after an
        # error keeps the stream unambiguous.
        self.close_connection = True
        self._send_json({"error": message}, status=status)

    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServeError(f"invalid Content-Length header: {exc}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ServeError(f"request body too large ({length} bytes)", status=413)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # -------------------------------------------------------------- routing
    def _route(self, method: str) -> None:
        self._trace_id = obs.new_trace_id()
        self._status = 0
        start = time.perf_counter()
        path = self.path.split("?")[0]
        try:
            with obs.span(
                "http.request", trace_id=self._trace_id, method=method, path=path
            ):
                try:
                    handled = self._dispatch(method)
                except ServeError as exc:
                    self._send_error_json(str(exc), exc.status)
                    handled = True
                except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                    return
                except Exception as exc:  # pragma: no cover - defensive catch-all
                    self._send_error_json(f"internal error: {exc}", 500)
                    handled = True
                if not handled:
                    self._send_error_json(f"no route for {method} {self.path}", 404)
        finally:
            self._record_request(method, path, time.perf_counter() - start)

    def _record_request(self, method: str, path: str, seconds: float) -> None:
        status = self._status or 500
        if obs.enabled():
            registry = self.server.service.registry
            registry.counter(
                "repro_http_requests_total",
                "HTTP requests served, by method and status code.",
                method=method, status=status,
            ).inc()
            registry.histogram(
                "repro_http_request_seconds",
                "End-to-end HTTP request handling time.",
                method=method,
            ).observe(seconds)
        if self.server.log_json:
            line = json.dumps({
                "method": method,
                "path": path,
                "status": status,
                "duration_ms": round(seconds * 1000.0, 3),
                "trace": self._trace_id,
            }, separators=(",", ":"))
            print(line, file=sys.stderr, flush=True)

    def _dispatch(self, method: str) -> bool:
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        service = self.server.service
        if method == "GET":
            if parts == ["healthz"]:
                payload, ok = self.server.health()
                self._send_json(payload, status=200 if ok else 503)
                return True
            if parts == ["alerts"]:
                recorder = self.server.recorder
                if recorder is None:
                    self._send_json({"enabled": False, "alerts": []})
                    return True
                statuses = recorder.statuses()
                self._send_json({
                    "enabled": True,
                    "firing": [s.name for s in statuses if s.firing],
                    "alerts": [s.to_dict() for s in statuses],
                })
                return True
            if parts == ["stats"]:
                stats = service.stats()
                if self.server.batcher is not None:
                    stats["batcher"] = self.server.batcher.stats()
                self._send_json(stats)
                return True
            if parts == ["metrics"]:
                registries = [service.registry]
                if obs.metrics() is not service.registry:
                    registries.append(obs.metrics())
                self._send_text(
                    obs.render_prometheus(registries),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                return True
            if len(parts) == 2 and parts[0] == "graphs":
                self._send_json(service.info(parts[1]))
                return True
            if parts == ["quality"]:
                self._send_json(service.quality())
                return True
            if len(parts) == 3 and parts[0] == "graphs" and parts[2] == "stats":
                self._send_json(service.graph_stats(parts[1]))
                return True
            if len(parts) == 3 and parts[0] == "graphs" and parts[2] == "quality":
                self._send_json(service.graph_quality(parts[1]))
                return True
            return False
        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "graphs":
                self._send_json({"unloaded": service.unload(parts[1])})
                return True
            return False
        if method != "POST":
            return False
        if parts == ["graphs"]:
            self._handle_load(self._read_json())
            return True
        if len(parts) == 3 and parts[0] == "graphs":
            name, verb = parts[1], parts[2]
            if verb == "delta":
                self._handle_delta(name, self._read_json())
                return True
            if verb == "query":
                self._handle_query(name, self._read_json())
                return True
        return False

    # ------------------------------------------------------------- handlers
    def _handle_load(self, payload: dict) -> None:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError("load needs a non-empty 'name'")
        allowed = {
            "name", "path", "store", "hash", "propagator", "propagator_kwargs",
            "method", "method_kwargs", "fraction", "seed", "iterations",
            "tolerance", "localized", "replace", "recover",
        }
        unknown = set(payload) - allowed
        if unknown:
            raise ServeError(f"unknown load fields: {sorted(unknown)}")
        try:
            fraction = float(payload.get("fraction", 0.05))
            seed = int(payload.get("seed", 0))
            iterations = int(payload.get("iterations", 300))
            tolerance = float(payload.get("tolerance", 1e-8))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"invalid load parameter: {exc}") from exc
        info = self.server.service.load_graph(
            name,
            path=payload.get("path"),
            store=payload.get("store"),
            run_hash=payload.get("hash"),
            propagator=payload.get("propagator", "linbp"),
            propagator_kwargs=payload.get("propagator_kwargs"),
            method=payload.get("method", "GS"),
            method_kwargs=payload.get("method_kwargs"),
            fraction=fraction,
            seed=seed,
            iterations=iterations,
            tolerance=tolerance,
            localized=bool(payload.get("localized", False)),
            replace=bool(payload.get("replace", False)),
            recover=bool(payload.get("recover", False)),
        )
        self._send_json({"loaded": info}, status=201)

    def _handle_delta(self, name: str, payload: dict) -> None:
        # Transport fields ride next to the delta record and are stripped
        # before GraphDelta.from_dict sees the payload: "ack" selects the
        # acknowledgement mode ("propagated" default, "applied" = ack as
        # soon as durable+applied), "id" is the client's idempotency key.
        ack = payload.pop("ack", "propagated")
        if ack not in ("propagated", "applied"):
            raise ServeError(
                f"ack must be 'propagated' or 'applied', got {ack!r}"
            )
        delta_id = payload.pop("id", None)
        if delta_id is not None:
            delta_id = str(delta_id)
        batcher = self.server.batcher
        if batcher is not None:
            outcome = batcher.apply_delta(
                name, payload, ack=ack, delta_id=delta_id
            )
        else:
            from repro.stream.delta import GraphDelta

            try:
                delta = GraphDelta.from_dict(payload)
            except (TypeError, ValueError) as exc:
                raise ServeError(f"invalid delta: {exc}") from exc
            outcome = self.server.service.apply_delta(
                name, delta, propagate=(ack == "propagated"),
                delta_id=delta_id,
            )
        self._send_json(outcome.to_dict())

    def _handle_query(self, name: str, payload: dict) -> None:
        unknown = set(payload) - {"nodes", "top_k", "min_version"}
        if unknown:
            raise ServeError(f"unknown query fields: {sorted(unknown)}")
        nodes = payload.get("nodes")
        top_k = payload.get("top_k")
        min_version = payload.get("min_version")
        batcher = self.server.batcher
        if batcher is not None:
            result = batcher.query(name, nodes, top_k, min_version)
        else:
            result = self.server.service.query(name, nodes, top_k, min_version)
        self._send_json(result.to_dict())

    # ----------------------------------------------------------- verb hooks
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


def make_server(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 8151,
    batcher: MicroBatcher | None = None,
    log_json: bool = False,
    recorder=None,
) -> InferenceHTTPServer:
    """Bind the serving endpoint (``port=0`` picks a free port for tests)."""
    return InferenceHTTPServer(
        (host, port), service, batcher, log_json=log_json, recorder=recorder
    )
