"""The inference service: named warm sessions answering belief queries.

:class:`InferenceService` owns a registry of named
:class:`~repro.stream.session.StreamingSession` objects — one per loaded
graph — and exposes the three serving verbs:

* **load/unload** — materialize a graph (``.npz`` bundle, a runner-store
  record, or a ready :class:`~repro.graph.graph.Graph`), seed it, estimate
  the compatibility matrix if the propagator needs one, run the anchoring
  full solve, and keep the warm session around;
* **delta** — push one or more :class:`~repro.stream.delta.GraphDelta`
  through the session (one incremental propagation per *batch* of deltas,
  not per delta — the coalescing the micro-batcher exploits);
* **query** — read belief rows for arbitrary node sets straight off the
  session's current :class:`~repro.propagation.engine.PropagationResult`,
  with staleness metadata and an optional per-node top-k ranking, memoized
  in a :class:`~repro.serve.cache.QueryCache` until the next delta.

Consistency model: every operation on one served graph runs under that
session's reentrant lock, so queries see either the belief matrix from
before a concurrent delta or after it — never a half-applied state.  Reads
are *fresh, monotonic* reads: a query submitted after a delta's
acknowledgement always reflects that delta.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.eval.seeding import stratified_seed_labels
from repro.graph.graph import Graph
from repro.propagation.engine import ESTIMATORS, PROPAGATORS, propagator_names
from repro.serve.cache import QueryCache
from repro.serve.loader import GraphSourceError, load_serving_graph
from repro.stream.delta import GraphDelta
from repro.stream.session import StreamingSession

__all__ = [
    "DeltaBatchResult",
    "InferenceService",
    "QueryResult",
    "ServeError",
    "UnknownGraphError",
]


class ServeError(Exception):
    """A user-facing serving failure; carries the HTTP status to map to."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


class UnknownGraphError(ServeError):
    """The named graph is not loaded."""

    def __init__(self, name: str, loaded: list[str]) -> None:
        listing = ", ".join(sorted(loaded)) if loaded else "none"
        super().__init__(
            f"no graph named {name!r} is loaded (loaded: {listing})", status=404
        )


# ------------------------------------------------------------------- results
@dataclass
class QueryResult:
    """Belief slice for one query, plus the staleness metadata.

    ``staleness`` describes how old the belief snapshot is:
    ``queries_since_refresh`` counts queries answered from it before this
    one (reset to zero by every delta-triggered propagation — the counter
    the benchmark watches), ``snapshot_age_seconds`` its wall-clock age,
    and ``pending_deltas`` deltas applied to the graph but not yet
    propagated (always 0 on the public paths, which propagate eagerly).
    """

    name: str
    nodes: np.ndarray
    beliefs: np.ndarray
    labels: np.ndarray
    top: list | None
    graph_version: int
    belief_version: int
    staleness: dict
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "graph": self.name,
            "nodes": np.asarray(self.nodes).tolist(),
            "beliefs": np.asarray(self.beliefs).tolist(),
            "labels": np.asarray(self.labels).tolist(),
            "top": self.top,
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "staleness": self.staleness,
            "cached": self.cached,
        }


@dataclass
class DeltaBatchResult:
    """Outcome of one coalesced delta application + single propagation.

    ``n_coalesced`` counts the deltas whose propagation this result's
    belief refresh covers: for a direct ``apply_deltas`` call it equals
    ``n_deltas``; for a per-caller view handed out by the micro-batcher it
    reports how many sibling deltas shared the single propagation while
    ``n_deltas``/``errors`` describe only the caller's own submission.
    """

    name: str
    n_deltas: int
    n_applied: int
    errors: list  # one entry per submitted delta: None or the error message
    mode: str | None  # "incremental" / "full" / None when nothing applied
    reason: str | None
    propagate_seconds: float
    graph_version: int
    belief_version: int
    n_coalesced: int = 0

    def scoped_to_one(self) -> "DeltaBatchResult":
        """A per-caller view of one applied delta from a coalesced batch."""
        return DeltaBatchResult(
            name=self.name,
            n_deltas=1,
            n_applied=1,
            errors=[None],
            mode=self.mode,
            reason=self.reason,
            propagate_seconds=self.propagate_seconds,
            graph_version=self.graph_version,
            belief_version=self.belief_version,
            n_coalesced=self.n_coalesced,
        )

    def to_dict(self) -> dict:
        return {
            "graph": self.name,
            "n_deltas": self.n_deltas,
            "n_applied": self.n_applied,
            "errors": self.errors,
            "mode": self.mode,
            "reason": self.reason,
            "propagate_seconds": self.propagate_seconds,
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "n_coalesced": self.n_coalesced,
        }


# -------------------------------------------------------------- served graph
class _ServedGraph:
    """One named session plus its cache, version counters and tallies.

    The *consistency tokens* (``graph_version``, ``belief_version``) stay
    plain integers — the query cache and read-your-writes semantics depend
    on them and they must keep counting even under ``REPRO_OBS=off``.  The
    *telemetry* tallies (query/delta/solve counts, staleness gauges) live
    on the metrics registry, labeled by graph name; the old attribute
    names are read-back properties, so the JSON shapes of ``info()`` /
    ``staleness()`` are unchanged.
    """

    def __init__(self, name: str, session: StreamingSession, source: dict,
                 cache_entries: int, registry=None) -> None:
        self.name = name
        self.session = session
        self.source = source
        self.registry = registry if registry is not None else obs.metrics()
        self.created_at = time.time()
        self.graph_version = 0  # deltas applied since load
        self.belief_version = 0  # completed propagations (anchor included)
        self.last_solve_monotonic = time.monotonic()
        labels = {"graph": name}
        self._c_queries = self.registry.counter(
            "repro_serve_queries_total", "Queries answered per served graph.",
            **labels,
        )
        self._c_deltas = self.registry.counter(
            "repro_serve_deltas_total", "Deltas accepted per served graph.",
            **labels,
        )
        self._c_solves = {
            mode: self.registry.counter(
                "repro_serve_solves_total",
                "Belief refreshes per served graph, by solve mode.",
                mode=mode, **labels,
            )
            for mode in ("full", "incremental", "localized")
        }
        self._g_queries_since = self.registry.gauge(
            "repro_serve_queries_since_refresh",
            "Queries answered from the current belief snapshot.",
            **labels,
        )
        self._g_pending = self.registry.gauge(
            "repro_serve_pending_deltas",
            "Deltas applied to the graph but not yet propagated.",
            **labels,
        )
        self._h_query = self.registry.histogram(
            "repro_serve_query_seconds",
            "Wall time of one (possibly batched) query_many call.",
            **labels,
        )
        self._h_delta = self.registry.histogram(
            "repro_serve_delta_seconds",
            "Wall time of one coalesced delta batch (apply + propagate).",
            **labels,
        )
        self.cache = (
            QueryCache(
                cache_entries,
                hit_counter=self.registry.counter(
                    "repro_serve_cache_hits_total",
                    "Query-cache hits per served graph.", **labels,
                ),
                miss_counter=self.registry.counter(
                    "repro_serve_cache_misses_total",
                    "Query-cache misses per served graph.", **labels,
                ),
            )
            if cache_entries > 0 else None
        )

    # -- registry-backed read-back properties (legacy attribute names) ------
    @property
    def n_queries(self) -> int:
        return int(self._c_queries.value)

    @property
    def n_deltas(self) -> int:
        return int(self._c_deltas.value)

    @property
    def n_incremental(self) -> int:
        return int(self._c_solves["incremental"].value)

    @property
    def n_localized(self) -> int:
        return int(self._c_solves["localized"].value)

    @property
    def n_full(self) -> int:
        return int(self._c_solves["full"].value)

    @property
    def n_solves(self) -> int:
        return sum(int(c.value) for c in self._c_solves.values())

    @property
    def queries_since_refresh(self) -> int:
        return int(self._g_queries_since.value)

    @property
    def _pending_deltas(self) -> int:
        return int(self._g_pending.value)

    # Callers hold session.lock for everything below.
    def record_queries(self, n_answered: int, seconds: float) -> None:
        self._c_queries.inc(n_answered)
        self._g_queries_since.inc(n_answered)
        self._h_query.observe(seconds)

    def record_delta_accepted(self) -> None:
        self._c_deltas.inc()
        self._g_pending.inc()

    def record_solve(self, mode: str) -> None:
        self.belief_version += 1
        counter = self._c_solves.get(mode)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_solves_total",
                "Belief refreshes per served graph, by solve mode.",
                mode=mode, graph=self.name,
            )
            self._c_solves[mode] = counter
        counter.inc()
        self.last_solve_monotonic = time.monotonic()
        self._g_queries_since.set(0)

    def clear_pending(self) -> None:
        self._g_pending.set(0)

    def staleness(self) -> dict:
        return {
            "queries_since_refresh": self.queries_since_refresh,
            "snapshot_age_seconds": time.monotonic() - self.last_solve_monotonic,
            "pending_deltas": self._pending_deltas,
        }

    def info(self) -> dict:
        graph = self.session.graph
        return {
            "name": self.name,
            "source": self.source,
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "n_classes": graph.n_classes,
            "propagator": self.session.propagator.name,
            "n_seeds": int(np.sum(self.session.seed_labels >= 0)),
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "n_queries": self.n_queries,
            "n_deltas": self.n_deltas,
            "n_solves": self.n_solves,
            "n_incremental": self.n_incremental,
            "n_localized": self.n_localized,
            "n_full": self.n_full,
            "decisions": self.session.decision_stats(),
            "cache": (
                {"disabled": True} if self.cache is None else self.cache.stats()
            ),
            "staleness": self.staleness(),
        }


# ------------------------------------------------------------------- service
class InferenceService:
    """Registry of served graphs behind the query/delta/load verbs.

    Parameters
    ----------
    cache_entries:
        Per-graph :class:`QueryCache` capacity (``0`` disables caching).
    strict_deltas:
        Delta application strictness forwarded to every session (lenient
        mode tolerates duplicate adds / absent removals in noisy feeds).
    registry:
        The :class:`~repro.obs.MetricsRegistry` carrying this service's
        per-graph telemetry; defaults to the process-global registry
        (``repro.obs.metrics()``).  Loading a graph resets that graph
        name's series, so per-graph counters always start at zero.
    """

    def __init__(
        self,
        cache_entries: int = 1024,
        strict_deltas: bool = True,
        registry=None,
    ) -> None:
        self.cache_entries = int(cache_entries)
        self.strict_deltas = bool(strict_deltas)
        self.registry = registry if registry is not None else obs.metrics()
        self.started_at = time.time()
        self._graphs: dict[str, _ServedGraph] = {}
        self._registry_lock = threading.RLock()

    # ------------------------------------------------------------- registry
    def graph_names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._graphs)

    def _served(self, name: str) -> _ServedGraph:
        with self._registry_lock:
            try:
                return self._graphs[name]
            except KeyError:
                raise UnknownGraphError(name, list(self._graphs)) from None

    def load_graph(
        self,
        name: str,
        *,
        path=None,
        store=None,
        run_hash: str | None = None,
        graph: Graph | None = None,
        propagator: str = "linbp",
        propagator_kwargs: dict | None = None,
        method: str = "GS",
        method_kwargs: dict | None = None,
        compatibility=None,
        seed_labels=None,
        fraction: float = 0.05,
        seed: int = 0,
        iterations: int = 300,
        tolerance: float = 1e-8,
        localized: bool = False,
        replace: bool = False,
    ) -> dict:
        """Load a graph under ``name`` and run its anchoring full solve.

        The graph comes from exactly one of ``path`` (``.npz`` bundle),
        ``store`` + ``run_hash`` (runner-store record), or ``graph`` (a
        ready instance, which the session takes ownership of).  Unless
        ``seed_labels`` is given, seeds are drawn stratified from the
        graph's ground-truth labels at ``fraction``; unless
        ``compatibility`` is given, the matrix is estimated with the
        registered ``method`` (only when the propagator needs one).
        ``localized=True`` opts the session into residual-push localized
        solves for small deltas.  Returns the loaded graph's info dict.
        """
        if not name or "/" in name:
            raise ServeError(f"invalid graph name {name!r} (non-empty, no '/')")
        with self._registry_lock:
            # Fail the common operator error before the expensive part
            # (graph build + estimation + anchoring solve); the
            # registration below re-checks under the lock for the race
            # where two loads of the same name overlap.
            if name in self._graphs and not replace:
                raise ServeError(
                    f"a graph named {name!r} is already loaded "
                    "(pass replace=true to swap it)", status=409,
                )
        if propagator not in PROPAGATORS:
            raise ServeError(
                f"unknown propagator {propagator!r}; valid: "
                f"{', '.join(propagator_names())}"
            )
        if graph is None:
            try:
                graph = load_serving_graph(path=path, store=store, run_hash=run_hash)
            except GraphSourceError as exc:
                raise ServeError(str(exc)) from exc
        elif path is not None or store is not None:
            raise ServeError("pass either a ready graph or a source, not both")
        source = {
            "path": None if path is None else str(path),
            "store": None if store is None else str(store),
            "hash": run_hash,
        }

        if graph.n_classes is None:
            raise ServeError(f"graph for {name!r} does not know its class count")
        if seed_labels is None:
            if graph.labels is None:
                raise ServeError(
                    f"graph for {name!r} carries no ground-truth labels; "
                    "pass explicit seed_labels"
                )
            seed_labels = stratified_seed_labels(
                graph.require_labels(), fraction=float(fraction), rng=int(seed)
            )
        else:
            seed_labels = np.asarray(seed_labels, dtype=np.int64)

        propagator_instance = PROPAGATORS[propagator](
            max_iterations=int(iterations),
            tolerance=float(tolerance),
            **(propagator_kwargs or {}),
        )
        if propagator_instance.needs_compatibility and compatibility is None:
            compatibility = self._estimate_compatibility(
                graph, seed_labels, method, method_kwargs, int(seed)
            )

        # A (re)loaded graph starts its telemetry from zero: drop any series
        # a previous same-named load left on the registry *before* the new
        # session registers its own.
        self.registry.reset_children(graph=name)
        session = StreamingSession(
            graph,
            propagator_instance,
            compatibility=compatibility,
            seed_labels=seed_labels,
            localized=bool(localized),
            strict=self.strict_deltas,
            registry=self.registry,
            metric_labels={"graph": name},
        )
        served = _ServedGraph(name, session, source, self.cache_entries, self.registry)
        with session.lock, obs.span("serve.load", graph=name):
            step = session.propagate()
            served.record_solve(step.mode)

        with self._registry_lock:
            if name in self._graphs and not replace:
                raise ServeError(
                    f"a graph named {name!r} is already loaded "
                    "(pass replace=true to swap it)", status=409,
                )
            self._graphs[name] = served
        return served.info()

    @staticmethod
    def _estimate_compatibility(
        graph: Graph, seed_labels, method: str, method_kwargs, seed: int
    ):
        if method not in ESTIMATORS:
            raise ServeError(
                f"unknown estimator {method!r}; valid: "
                f"{', '.join(sorted(ESTIMATORS))}"
            )
        cls = ESTIMATORS[method]
        kwargs = dict(method_kwargs or {})
        accepted = inspect.signature(cls.__init__).parameters
        if "seed" in accepted and "seed" not in kwargs:
            kwargs["seed"] = seed
        try:
            estimation = cls(**kwargs).fit(graph, seed_labels)
        except Exception as exc:
            raise ServeError(
                f"compatibility estimation with {method} failed: {exc}"
            ) from exc
        return estimation.compatibility

    def unload(self, name: str) -> dict:
        """Drop a served graph; returns its final info dict."""
        with self._registry_lock:
            served = self._served(name)
            with served.session.lock:  # a consistent final snapshot
                info = served.info()
            del self._graphs[name]
            # Bound series cardinality: an unloaded graph stops exporting.
            self.registry.reset_children(graph=name)
        return info

    def info(self, name: str) -> dict:
        served = self._served(name)
        with served.session.lock:
            return served.info()

    def graph_stats(self, name: str) -> dict:
        """Solve-decision statistics for one served graph.

        Reports the per-mode solve counts (full / incremental / localized),
        the cumulative stored-nonzeros the solves visited, and the active
        kernel backend — the observability slice of the localized subsystem.
        """
        served = self._served(name)
        with served.session.lock:
            return {
                "graph": name,
                "n_solves": served.n_solves,
                "n_incremental": served.n_incremental,
                "n_localized": served.n_localized,
                "n_full": served.n_full,
                **served.session.decision_stats(),
            }

    # -------------------------------------------------------------- queries
    @staticmethod
    def _check_nodes(nodes, n_nodes: int) -> np.ndarray:
        try:
            nodes = np.asarray(nodes, dtype=np.int64).ravel()
        except (TypeError, ValueError, OverflowError) as exc:
            # OverflowError: a node id too large for int64.
            raise ServeError(f"query nodes must be integers: {exc}") from exc
        if nodes.size == 0:
            raise ServeError("query needs at least one node")
        if nodes.min() < 0 or nodes.max() >= n_nodes:
            raise ServeError(
                f"query nodes must be in 0..{n_nodes - 1} "
                f"(got min {nodes.min()}, max {nodes.max()})"
            )
        return nodes

    def query(self, name: str, nodes, top_k: int | None = None) -> QueryResult:
        """Answer one query; equivalent to ``query_many`` with one request."""
        result = self.query_many(name, [(nodes, top_k)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def query_many(
        self, name: str, requests: list
    ) -> list[QueryResult | Exception]:
        """Answer many queries under one lock with one vectorized lookup.

        ``requests`` is a list of ``(nodes, top_k)`` pairs.  All cache
        misses are gathered from the belief matrix in a single fancy-index
        and (when any request wants a ranking) a single arg-sort — the
        vectorization the micro-batcher banks on.  Returns one
        :class:`QueryResult` **or** :class:`ServeError` per request, in
        order; per-request failures never poison their batch siblings.
        """
        served = self._served(name)
        query_start = time.perf_counter()
        with served.session.lock, obs.span(
            "serve.query", graph=name, n_requests=len(requests)
        ):
            result = served.session.last_result
            if result is None:  # pragma: no cover - load always anchors
                raise ServeError(f"graph {name!r} has no beliefs yet", status=503)
            beliefs = result.beliefs
            labels = result.labels
            n_nodes = served.session.graph.n_nodes
            n_classes = beliefs.shape[1]
            version = served.belief_version

            outputs: list[QueryResult | Exception | None] = [None] * len(requests)
            misses: list[tuple[int, np.ndarray, int | None]] = []
            for position, (nodes, top_k) in enumerate(requests):
                try:
                    node_array = self._check_nodes(nodes, n_nodes)
                    if top_k is not None:
                        try:
                            top_k = int(top_k)
                        except (TypeError, ValueError) as exc:
                            raise ServeError(
                                f"top_k must be an integer: {exc}"
                            ) from exc
                        if not 1 <= top_k <= n_classes:
                            raise ServeError(
                                f"top_k must be in 1..{n_classes}, got {top_k}"
                            )
                except ServeError as exc:
                    outputs[position] = exc
                    continue
                key = (node_array.tobytes(), top_k)
                cached = (
                    None if served.cache is None
                    else served.cache.get(key, version)
                )
                if cached is not None:
                    hit = QueryResult(**cached, cached=True)
                    hit.staleness = served.staleness()
                    outputs[position] = hit
                else:
                    misses.append((position, node_array, top_k))

            if misses:
                gathered_nodes = np.concatenate([nodes for _, nodes, _ in misses])
                gathered_beliefs = beliefs[gathered_nodes]
                gathered_labels = labels[gathered_nodes]
                wants_ranking = any(top_k is not None for _, _, top_k in misses)
                order = (
                    np.argsort(-gathered_beliefs, axis=1, kind="stable")
                    if wants_ranking
                    else None
                )
                offset = 0
                for position, node_array, top_k in misses:
                    span = slice(offset, offset + node_array.shape[0])
                    offset += node_array.shape[0]
                    top = None
                    if top_k is not None:
                        ranks = order[span, :top_k]
                        scores = np.take_along_axis(
                            gathered_beliefs[span], ranks, axis=1
                        )
                        top = [
                            [[int(cls), float(score)]
                             for cls, score in zip(row_ranks, row_scores)]
                            for row_ranks, row_scores in zip(ranks, scores)
                        ]
                    payload = {
                        "name": name,
                        "nodes": node_array,
                        "beliefs": gathered_beliefs[span].copy(),
                        "labels": gathered_labels[span].copy(),
                        "top": top,
                        "graph_version": served.graph_version,
                        "belief_version": version,
                        "staleness": served.staleness(),
                    }
                    if served.cache is not None:
                        served.cache.put(
                            (node_array.tobytes(), top_k), version, dict(payload)
                        )
                    outputs[position] = QueryResult(**payload)

            n_answered = sum(
                1 for out in outputs if isinstance(out, QueryResult)
            )
            served.record_queries(n_answered, time.perf_counter() - query_start)
            return outputs

    # --------------------------------------------------------------- deltas
    def apply_delta(self, name: str, delta: GraphDelta) -> DeltaBatchResult:
        """Apply one delta (raising on rejection); one propagation follows."""
        outcome = self.apply_deltas(name, [delta])
        if outcome.errors[0] is not None:
            raise ServeError(f"delta rejected: {outcome.errors[0]}")
        return outcome

    def apply_deltas(self, name: str, deltas: list) -> DeltaBatchResult:
        """Apply a batch of deltas with a *single* incremental propagation.

        Each delta is validated and applied individually — a rejected one
        (strict-mode duplicate edge, out-of-range node ...) is reported in
        ``errors`` without blocking the rest.  The belief refresh happens
        once at the end, which is exactly the coalescing win: N concurrent
        deltas cost one propagation instead of N.
        """
        served = self._served(name)
        delta_start = time.perf_counter()
        with served.session.lock, obs.span(
            "serve.delta", graph=name, n_deltas=len(deltas)
        ):
            errors: list[str | None] = []
            n_applied = 0
            for delta in deltas:
                if not isinstance(delta, GraphDelta):
                    try:
                        delta = GraphDelta.from_dict(delta)
                    except (TypeError, ValueError) as exc:
                        errors.append(str(exc))
                        continue
                try:
                    served.session.apply(delta)
                except (TypeError, ValueError) as exc:
                    errors.append(str(exc))
                    continue
                errors.append(None)
                n_applied += 1
                served.graph_version += 1
                served.record_delta_accepted()
            mode = reason = None
            propagate_seconds = 0.0
            if n_applied:
                step = served.session.propagate()
                mode, reason = step.mode, step.decision.reason
                propagate_seconds = step.propagate_seconds
                served.record_solve(step.mode)
                served.clear_pending()
            served._h_delta.observe(time.perf_counter() - delta_start)
            return DeltaBatchResult(
                name=name,
                n_deltas=len(deltas),
                n_applied=n_applied,
                errors=errors,
                mode=mode,
                reason=reason,
                propagate_seconds=propagate_seconds,
                graph_version=served.graph_version,
                belief_version=served.belief_version,
                n_coalesced=len(deltas),
            )

    # --------------------------------------------------------------- health
    def health(self) -> dict:
        """Per-graph liveness for ``GET /healthz``.

        A graph is *live* once its session holds a belief matrix (the
        anchoring solve completed and queries can be answered).  The
        session lock is probed, never waited on: a session mid-propagation
        is busy, not dead, and the health probe must answer immediately
        either way.
        """
        with self._registry_lock:
            served_list = list(self._graphs.values())
        graphs = {}
        for served in served_list:
            locked = served.session.lock.acquire(blocking=False)
            try:
                graphs[served.name] = {
                    "live": served.session.last_result is not None,
                    "busy": not locked,
                    "graph_version": served.graph_version,
                    "belief_version": served.belief_version,
                    "staleness": served.staleness(),
                }
            finally:
                if locked:
                    served.session.lock.release()
        return graphs

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Service-wide stats: per-graph info plus global tallies."""
        with self._registry_lock:
            served_list = list(self._graphs.values())
        graphs = {}
        for served in served_list:
            with served.session.lock:
                graphs[served.name] = served.info()
        return {
            "uptime_seconds": time.time() - self.started_at,
            "n_graphs": len(graphs),
            "n_queries": sum(info["n_queries"] for info in graphs.values()),
            "n_deltas": sum(info["n_deltas"] for info in graphs.values()),
            "n_solves": sum(info["n_solves"] for info in graphs.values()),
            "graphs": graphs,
        }
