"""The inference service: named warm sessions answering belief queries.

:class:`InferenceService` owns a registry of named
:class:`~repro.stream.session.StreamingSession` objects — one per loaded
graph — and exposes the three serving verbs:

* **load/unload** — materialize a graph (``.npz`` bundle, a runner-store
  record, or a ready :class:`~repro.graph.graph.Graph`), seed it, estimate
  the compatibility matrix if the propagator needs one, run the anchoring
  full solve, and keep the warm session around;
* **delta** — push one or more :class:`~repro.stream.delta.GraphDelta`
  through the session (one incremental propagation per *batch* of deltas,
  not per delta — the coalescing the micro-batcher exploits);
* **query** — read belief rows for arbitrary node sets straight off the
  session's current :class:`~repro.propagation.engine.PropagationResult`,
  with staleness metadata and an optional per-node top-k ranking, memoized
  in a :class:`~repro.serve.cache.QueryCache` until the next delta.

Consistency model: every operation on one served graph runs under that
session's reentrant lock, so queries see either the belief matrix from
before a concurrent delta or after it — never a half-applied state.  Reads
are *fresh, monotonic* reads: a query submitted after a delta's
acknowledgement always reflects that delta.

Read-your-writes tokens make that contract explicit and portable across
process boundaries: every acknowledged delta returns a **version token**
(the session's ``graph_version`` after that delta's apply), and a query may
carry ``min_version`` — the service propagates lazily if needed and answers
from beliefs covering at least that token, or fails with status 412 when
the token is *ahead* of the session (the fence that detects lost
acknowledged writes after a crash recovery).  With ``queue_dir`` set, every
acknowledged delta is durably appended to a per-session redo log
(:class:`~repro.serve.queue.DeltaQueue`) *before* the acknowledgement, so
acks survive a ``kill -9``: recovery (``load_graph(recover=True)``) or an
LRU-evicted session's transparent reload replays the log and lands back on
the exact version the last token named.  ``max_sessions`` bounds residency:
the least-recently-used reloadable session is evicted to a stub and
rebuilt from source + redo log on its next touch.
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.eval.seeding import stratified_seed_labels
from repro.graph.graph import Graph
from repro.propagation.engine import ESTIMATORS, PROPAGATORS, propagator_names
from repro.serve.cache import QueryCache
from repro.serve.loader import GraphSourceError, load_serving_graph
from repro.serve.queue import DeltaQueue
from repro.stream.delta import GraphDelta
from repro.stream.session import StreamingSession

__all__ = [
    "DeltaBatchResult",
    "InferenceService",
    "QueryResult",
    "ServeError",
    "UnknownGraphError",
]


class ServeError(Exception):
    """A user-facing serving failure; carries the HTTP status to map to."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


class UnknownGraphError(ServeError):
    """The named graph is not loaded."""

    def __init__(self, name: str, loaded: list[str]) -> None:
        listing = ", ".join(sorted(loaded)) if loaded else "none"
        super().__init__(
            f"no graph named {name!r} is loaded (loaded: {listing})", status=404
        )


# ------------------------------------------------------------------- results
@dataclass
class QueryResult:
    """Belief slice for one query, plus the staleness metadata.

    ``staleness`` describes how old the belief snapshot is:
    ``queries_since_refresh`` counts queries answered from it before this
    one (reset to zero by every delta-triggered propagation — the counter
    the benchmark watches), ``snapshot_age_seconds`` its wall-clock age,
    and ``pending_deltas`` deltas applied to the graph but not yet
    propagated (always 0 on the public paths, which propagate eagerly).
    """

    name: str
    nodes: np.ndarray
    beliefs: np.ndarray
    labels: np.ndarray
    top: list | None
    graph_version: int
    belief_version: int
    staleness: dict
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "graph": self.name,
            "nodes": np.asarray(self.nodes).tolist(),
            "beliefs": np.asarray(self.beliefs).tolist(),
            "labels": np.asarray(self.labels).tolist(),
            "top": self.top,
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "staleness": self.staleness,
            "cached": self.cached,
        }


@dataclass
class DeltaBatchResult:
    """Outcome of one coalesced delta application + single propagation.

    ``n_coalesced`` counts the deltas whose propagation this result's
    belief refresh covers: for a direct ``apply_deltas`` call it equals
    ``n_deltas``; for a per-caller view handed out by the micro-batcher it
    reports how many sibling deltas shared the single propagation while
    ``n_deltas``/``errors`` describe only the caller's own submission.
    """

    name: str
    n_deltas: int
    n_applied: int
    errors: list  # one entry per submitted delta: None or the error message
    mode: str | None  # "incremental" / "full" / None when nothing applied
    reason: str | None
    propagate_seconds: float
    graph_version: int
    belief_version: int
    n_coalesced: int = 0
    # One read-your-writes token per submitted delta: the graph_version its
    # apply landed as (None for rejected deltas).  Passing a token back as a
    # query's min_version guarantees the answer reflects that delta.
    tokens: list = field(default_factory=list)
    # False when the acknowledgement was returned before the belief refresh
    # (deferred-ack mode); the refresh happens on the next flush or query.
    propagated: bool = True

    @property
    def token(self):
        """The batch's highest token (convenience for single-delta calls)."""
        accepted = [t for t in self.tokens if t is not None]
        return accepted[-1] if accepted else None

    def scoped_to_one(self, position: int = 0) -> "DeltaBatchResult":
        """A per-caller view of one applied delta from a coalesced batch."""
        token = (
            self.tokens[position] if 0 <= position < len(self.tokens) else None
        )
        return DeltaBatchResult(
            name=self.name,
            n_deltas=1,
            n_applied=1,
            errors=[None],
            mode=self.mode,
            reason=self.reason,
            propagate_seconds=self.propagate_seconds,
            graph_version=self.graph_version,
            belief_version=self.belief_version,
            n_coalesced=self.n_coalesced,
            tokens=[token],
            propagated=self.propagated,
        )

    def to_dict(self) -> dict:
        return {
            "graph": self.name,
            "n_deltas": self.n_deltas,
            "n_applied": self.n_applied,
            "errors": self.errors,
            "mode": self.mode,
            "reason": self.reason,
            "propagate_seconds": self.propagate_seconds,
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "n_coalesced": self.n_coalesced,
            "tokens": self.tokens,
            "token": self.token,
            "propagated": self.propagated,
        }


# -------------------------------------------------------------- served graph
class _ServedGraph:
    """One named session plus its cache, version counters and tallies.

    The *consistency tokens* (``graph_version``, ``belief_version``) stay
    plain integers — the query cache and read-your-writes semantics depend
    on them and they must keep counting even under ``REPRO_OBS=off``.  The
    *telemetry* tallies (query/delta/solve counts, staleness gauges) live
    on the metrics registry, labeled by graph name; the old attribute
    names are read-back properties, so the JSON shapes of ``info()`` /
    ``staleness()`` are unchanged.
    """

    def __init__(self, name: str, session: StreamingSession, source: dict,
                 cache_entries: int, registry=None) -> None:
        self.name = name
        self.session = session
        self.source = source
        self.registry = registry if registry is not None else obs.metrics()
        self.created_at = time.time()
        self.graph_version = 0  # deltas applied since load
        self.belief_version = 0  # completed propagations (anchor included)
        # graph_version the current belief matrix covers; < graph_version
        # while deferred-ack deltas await their propagation.
        self.propagated_version = 0
        self.last_solve_monotonic = time.monotonic()
        # LRU bookkeeping (written by the service under its registry lock):
        # last_used is a monotonic use counter, load_state everything needed
        # to rebuild the session from source without re-estimation (None for
        # graphs loaded from a ready instance — those cannot be evicted),
        # evicted flips when the session leaves the registry so in-flight
        # holders of this object retry instead of writing into a ghost.
        self.last_used = 0
        self.load_state: dict | None = None
        self.evicted = False
        labels = {"graph": name}
        self._c_queries = self.registry.counter(
            "repro_serve_queries_total", "Queries answered per served graph.",
            **labels,
        )
        self._c_deltas = self.registry.counter(
            "repro_serve_deltas_total", "Deltas accepted per served graph.",
            **labels,
        )
        self._c_solves = {
            mode: self.registry.counter(
                "repro_serve_solves_total",
                "Belief refreshes per served graph, by solve mode.",
                mode=mode, **labels,
            )
            for mode in ("full", "incremental", "localized")
        }
        self._g_queries_since = self.registry.gauge(
            "repro_serve_queries_since_refresh",
            "Queries answered from the current belief snapshot.",
            **labels,
        )
        self._g_pending = self.registry.gauge(
            "repro_serve_pending_deltas",
            "Deltas applied to the graph but not yet propagated.",
            **labels,
        )
        self._h_query = self.registry.histogram(
            "repro_serve_query_seconds",
            "Wall time of one (possibly batched) query_many call.",
            **labels,
        )
        self._h_delta = self.registry.histogram(
            "repro_serve_delta_seconds",
            "Wall time of one coalesced delta batch (apply + propagate).",
            **labels,
        )
        self.cache = (
            QueryCache(
                cache_entries,
                hit_counter=self.registry.counter(
                    "repro_serve_cache_hits_total",
                    "Query-cache hits per served graph.", **labels,
                ),
                miss_counter=self.registry.counter(
                    "repro_serve_cache_misses_total",
                    "Query-cache misses per served graph.", **labels,
                ),
            )
            if cache_entries > 0 else None
        )

    # -- registry-backed read-back properties (legacy attribute names) ------
    @property
    def n_queries(self) -> int:
        return int(self._c_queries.value)

    @property
    def n_deltas(self) -> int:
        return int(self._c_deltas.value)

    @property
    def n_incremental(self) -> int:
        return int(self._c_solves["incremental"].value)

    @property
    def n_localized(self) -> int:
        return int(self._c_solves["localized"].value)

    @property
    def n_full(self) -> int:
        return int(self._c_solves["full"].value)

    @property
    def n_solves(self) -> int:
        return sum(int(c.value) for c in self._c_solves.values())

    @property
    def queries_since_refresh(self) -> int:
        return int(self._g_queries_since.value)

    @property
    def _pending_deltas(self) -> int:
        return int(self._g_pending.value)

    # Callers hold session.lock for everything below.
    def record_queries(self, n_answered: int, seconds: float) -> None:
        self._c_queries.inc(n_answered)
        self._g_queries_since.inc(n_answered)
        self._h_query.observe(seconds)

    def record_delta_accepted(self) -> None:
        self._c_deltas.inc()
        self._g_pending.inc()

    def record_solve(self, mode: str) -> None:
        self.belief_version += 1
        self.propagated_version = self.graph_version
        counter = self._c_solves.get(mode)
        if counter is None:
            counter = self.registry.counter(
                "repro_serve_solves_total",
                "Belief refreshes per served graph, by solve mode.",
                mode=mode, graph=self.name,
            )
            self._c_solves[mode] = counter
        counter.inc()
        self.last_solve_monotonic = time.monotonic()
        self._g_queries_since.set(0)

    def clear_pending(self) -> None:
        self._g_pending.set(0)

    def staleness(self) -> dict:
        return {
            "queries_since_refresh": self.queries_since_refresh,
            "snapshot_age_seconds": time.monotonic() - self.last_solve_monotonic,
            "pending_deltas": self._pending_deltas,
        }

    def info(self) -> dict:
        graph = self.session.graph
        return {
            "name": self.name,
            "source": self.source,
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "n_classes": graph.n_classes,
            "propagator": self.session.propagator.name,
            "n_seeds": int(np.sum(self.session.seed_labels >= 0)),
            "graph_version": self.graph_version,
            "belief_version": self.belief_version,
            "propagated_version": self.propagated_version,
            "resident": True,
            "reloadable": self.load_state is not None,
            "n_queries": self.n_queries,
            "n_deltas": self.n_deltas,
            "n_solves": self.n_solves,
            "n_incremental": self.n_incremental,
            "n_localized": self.n_localized,
            "n_full": self.n_full,
            "decisions": self.session.decision_stats(),
            "cache": (
                {"disabled": True} if self.cache is None else self.cache.stats()
            ),
            "staleness": self.staleness(),
        }


# ------------------------------------------------------------------- service
class InferenceService:
    """Registry of served graphs behind the query/delta/load verbs.

    Parameters
    ----------
    cache_entries:
        Per-graph :class:`QueryCache` capacity (``0`` disables caching).
    strict_deltas:
        Delta application strictness forwarded to every session (lenient
        mode tolerates duplicate adds / absent removals in noisy feeds).
    registry:
        The :class:`~repro.obs.MetricsRegistry` carrying this service's
        per-graph telemetry; defaults to the process-global registry
        (``repro.obs.metrics()``).  Loading a graph resets that graph
        name's series, so per-graph counters always start at zero.
    max_sessions:
        Bound on *resident* sessions.  Loading past the bound evicts the
        least-recently-used reloadable session down to a stub; its next
        touch transparently rebuilds it from source (plus the redo-log
        replay when ``queue_dir`` is set).  ``None`` (default) keeps
        everything resident.  Sessions loaded from a ready graph instance,
        or carrying unlogged deltas (no queue), are never evicted.
    queue_dir:
        Directory for the per-session durable delta queues
        (:class:`~repro.serve.queue.DeltaQueue`).  Every acknowledged
        delta hits disk before its ack, so ``load_graph(recover=True)``
        after a worker kill replays the log and loses nothing.  ``None``
        disables durability (and with it deferred-ack crash safety).
    """

    def __init__(
        self,
        cache_entries: int = 1024,
        strict_deltas: bool = True,
        registry=None,
        max_sessions: int | None = None,
        queue_dir=None,
    ) -> None:
        self.cache_entries = int(cache_entries)
        self.strict_deltas = bool(strict_deltas)
        self.registry = registry if registry is not None else obs.metrics()
        self.started_at = time.time()
        self.max_sessions = None if max_sessions is None else int(max_sessions)
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self.queue = DeltaQueue(queue_dir) if queue_dir is not None else None
        self._graphs: dict[str, _ServedGraph] = {}
        self._evicted: dict[str, dict] = {}  # name -> reload stub
        self._registry_lock = threading.RLock()
        self._use_counter = itertools.count(1)
        self._reload_locks: dict[str, threading.Lock] = {}
        self._c_evictions = self.registry.counter(
            "repro_serve_evictions_total",
            "Sessions evicted to a reload stub by the LRU bound.",
        )
        self._c_reloads = self.registry.counter(
            "repro_serve_reloads_total",
            "Evicted sessions transparently rebuilt on touch.",
        )

    # ------------------------------------------------------------- registry
    def graph_names(self) -> list[str]:
        """Every loaded session name, resident or evicted-to-stub."""
        with self._registry_lock:
            return sorted(set(self._graphs) | set(self._evicted))

    def _served(self, name: str) -> _ServedGraph:
        """The resident session for ``name``, reloading an evicted stub.

        Touch accounting happens here: every access refreshes the LRU
        position, so the eviction policy sees queries and deltas alike.
        """
        while True:
            with self._registry_lock:
                served = self._graphs.get(name)
                if served is not None:
                    served.last_used = next(self._use_counter)
                    return served
                if name not in self._evicted:
                    raise UnknownGraphError(name, self.graph_names())
            self._reload(name)

    @contextmanager
    def _locked(self, name: str):
        """A resident session with its lock held, retrying across evictions.

        The gap between :meth:`_served` returning and the session lock
        being acquired can race an eviction (or an unload): the object is
        then a ghost no longer in the registry, and writes to it would be
        silently lost.  The ``evicted`` flag — flipped under the session
        lock — makes the race detectable; detection retries through
        :meth:`_served`, which reloads or raises.
        """
        while True:
            served = self._served(name)
            with served.session.lock:
                if served.evicted:
                    continue
                yield served
                return

    def load_graph(
        self,
        name: str,
        *,
        path=None,
        store=None,
        run_hash: str | None = None,
        graph: Graph | None = None,
        propagator: str = "linbp",
        propagator_kwargs: dict | None = None,
        method: str = "GS",
        method_kwargs: dict | None = None,
        compatibility=None,
        seed_labels=None,
        fraction: float = 0.05,
        seed: int = 0,
        iterations: int = 300,
        tolerance: float = 1e-8,
        localized: bool = False,
        replace: bool = False,
        recover: bool = False,
    ) -> dict:
        """Load a graph under ``name`` and run its anchoring full solve.

        The graph comes from exactly one of ``path`` (``.npz`` bundle),
        ``store`` + ``run_hash`` (runner-store record), or ``graph`` (a
        ready instance, which the session takes ownership of).  Unless
        ``seed_labels`` is given, seeds are drawn stratified from the
        graph's ground-truth labels at ``fraction``; unless
        ``compatibility`` is given, the matrix is estimated with the
        registered ``method`` (only when the propagator needs one).
        ``localized=True`` opts the session into residual-push localized
        solves for small deltas.  Returns the loaded graph's info dict.

        With a durable queue attached, a fresh load **drops** any redo log
        a previous same-named session left behind (the log described that
        session, not this one), while ``recover=True`` **replays** it after
        the anchoring solve — the re-placement path a router takes when a
        worker died: the rebuilt session lands on the exact graph version
        the dead worker's last acknowledgement named.
        """
        if not name or "/" in name:
            raise ServeError(f"invalid graph name {name!r} (non-empty, no '/')")
        with self._registry_lock:
            # Fail the common operator error before the expensive part
            # (graph build + estimation + anchoring solve); the
            # registration below re-checks under the lock for the race
            # where two loads of the same name overlap.
            if name in self._graphs and not replace:
                raise ServeError(
                    f"a graph named {name!r} is already loaded "
                    "(pass replace=true to swap it)", status=409,
                )
        if propagator not in PROPAGATORS:
            raise ServeError(
                f"unknown propagator {propagator!r}; valid: "
                f"{', '.join(propagator_names())}"
            )
        if graph is None:
            try:
                graph = load_serving_graph(path=path, store=store, run_hash=run_hash)
            except GraphSourceError as exc:
                raise ServeError(str(exc)) from exc
        elif path is not None or store is not None:
            raise ServeError("pass either a ready graph or a source, not both")
        source = {
            "path": None if path is None else str(path),
            "store": None if store is None else str(store),
            "hash": run_hash,
        }

        if graph.n_classes is None:
            raise ServeError(f"graph for {name!r} does not know its class count")
        if seed_labels is None:
            if graph.labels is None:
                raise ServeError(
                    f"graph for {name!r} carries no ground-truth labels; "
                    "pass explicit seed_labels"
                )
            seed_labels = stratified_seed_labels(
                graph.require_labels(), fraction=float(fraction), rng=int(seed)
            )
        else:
            seed_labels = np.asarray(seed_labels, dtype=np.int64)

        propagator_instance = PROPAGATORS[propagator](
            max_iterations=int(iterations),
            tolerance=float(tolerance),
            **(propagator_kwargs or {}),
        )
        if propagator_instance.needs_compatibility and compatibility is None:
            compatibility = self._estimate_compatibility(
                graph, seed_labels, method, method_kwargs, int(seed)
            )

        # Everything a reload needs to rebuild this session *without*
        # re-estimation or re-seeding: the frozen seed labels and
        # compatibility make the rebuild bit-deterministic, the source
        # fields make it possible at all.  Ready-graph loads get None — the
        # instance is the only copy, so the session can never be evicted.
        load_state = None
        if source["path"] is not None or source["store"] is not None:
            load_state = {
                "path": source["path"],
                "store": source["store"],
                "run_hash": run_hash,
                "propagator": propagator,
                "propagator_kwargs": dict(propagator_kwargs or {}),
                "iterations": int(iterations),
                "tolerance": float(tolerance),
                "localized": bool(localized),
                "seed_labels": np.array(seed_labels, dtype=np.int64, copy=True),
                "compatibility": (
                    None if compatibility is None
                    else np.array(compatibility, dtype=np.float64, copy=True)
                ),
            }

        # A (re)loaded graph starts its telemetry from zero: drop any series
        # a previous same-named load left on the registry *before* the new
        # session registers its own.
        self.registry.reset_children(graph=name)
        session = StreamingSession(
            graph,
            propagator_instance,
            compatibility=compatibility,
            seed_labels=seed_labels,
            localized=bool(localized),
            strict=self.strict_deltas,
            registry=self.registry,
            metric_labels={"graph": name},
        )
        served = _ServedGraph(name, session, source, self.cache_entries, self.registry)
        served.load_state = load_state
        with session.lock, obs.span("serve.load", graph=name, recover=recover):
            step = session.propagate()
            served.record_solve(step.mode)
            if self.queue is not None:
                if recover:
                    self._replay_queue(served)
                else:
                    # A fresh load owns the name: any redo log left by a
                    # previous same-named session describes dead state.
                    self.queue.drop(name)

        with self._registry_lock:
            if name in self._graphs and not replace:
                raise ServeError(
                    f"a graph named {name!r} is already loaded "
                    "(pass replace=true to swap it)", status=409,
                )
            self._evicted.pop(name, None)
            self._graphs[name] = served
            served.last_used = next(self._use_counter)
        self._maybe_evict(keep=name)
        return served.info()

    def _replay_queue(self, served: _ServedGraph) -> int:
        """Replay a session's redo log onto its freshly anchored session.

        Restores ``graph_version`` to the last logged sequence number —
        the exact value the last pre-crash acknowledgement handed out as a
        token — so read-your-writes fences keep holding across the
        recovery.  Caller holds the session lock.
        """
        entries = self.queue.replay(served.name)
        if not entries:
            return 0
        applied, errors, step = served.session.rehydrate(
            [delta for _, delta in entries]
        )
        served.graph_version = entries[-1][0]
        served._c_deltas.inc(applied)
        # rehydrate() already propagated; stamp the solve so the belief
        # version advances and propagated_version covers the replay.
        if step is not None:
            served.record_solve(step.mode)
            served.clear_pending()
        self.registry.counter(
            "repro_serve_replayed_deltas_total",
            "Redo-log deltas re-applied during session recovery.",
            graph=served.name,
        ).inc(applied)
        if errors:  # should be impossible: same base graph, same order
            self.registry.counter(
                "repro_serve_replay_errors_total",
                "Redo-log deltas that failed to re-apply during recovery.",
                graph=served.name,
            ).inc(len(errors))
        return applied

    @staticmethod
    def _estimate_compatibility(
        graph: Graph, seed_labels, method: str, method_kwargs, seed: int
    ):
        if method not in ESTIMATORS:
            raise ServeError(
                f"unknown estimator {method!r}; valid: "
                f"{', '.join(sorted(ESTIMATORS))}"
            )
        cls = ESTIMATORS[method]
        kwargs = dict(method_kwargs or {})
        accepted = inspect.signature(cls.__init__).parameters
        if "seed" in accepted and "seed" not in kwargs:
            kwargs["seed"] = seed
        try:
            estimation = cls(**kwargs).fit(graph, seed_labels)
        except Exception as exc:
            raise ServeError(
                f"compatibility estimation with {method} failed: {exc}"
            ) from exc
        return estimation.compatibility

    # ----------------------------------------------------- eviction / reload
    def _evictable(self, served: _ServedGraph) -> bool:
        """Can this session be dropped without losing acknowledged state?

        Needs a reload recipe (``load_state``), and either a durable queue
        covering its deltas or no deltas at all — evicting unlogged deltas
        would silently violate every token already handed out.
        """
        return served.load_state is not None and (
            self.queue is not None or served.graph_version == 0
        )

    def _maybe_evict(self, keep: str | None = None) -> None:
        """Enforce ``max_sessions`` by evicting LRU reloadable sessions."""
        if self.max_sessions is None:
            return
        while True:
            with self._registry_lock:
                if len(self._graphs) <= self.max_sessions:
                    return
                candidates = [
                    served for served_name, served in self._graphs.items()
                    if served_name != keep and self._evictable(served)
                ]
                if not candidates:
                    return  # over budget but nothing is safely evictable
                victim = min(candidates, key=lambda served: served.last_used)
                victim_name = victim.name
            if not self._evict(victim_name):
                return

    def _evict(self, name: str) -> bool:
        """Demote one resident session to a reload stub.

        Takes the session lock *inside* the registry lock (the same order
        as :meth:`unload`), so in-flight operations on the victim finish
        first and later ones — which re-check ``evicted`` under the session
        lock — retry into a transparent reload.
        """
        with self._registry_lock:
            served = self._graphs.get(name)
            if served is None or not self._evictable(served):
                return False
            with served.session.lock:
                served.evicted = True
                del self._graphs[name]
                self._evicted[name] = {
                    "load_state": served.load_state,
                    "source": dict(served.source),
                    "graph_version": served.graph_version,
                    "evicted_at": time.time(),
                }
            # The stub keeps no series alive; telemetry restarts from zero
            # on reload, like any (re)load.  Counter consumers (the
            # time-series recorder, federation) already clamp resets.
            self.registry.reset_children(graph=name)
        self._c_evictions.inc()
        return True

    def _reload_lock(self, name: str) -> threading.Lock:
        with self._registry_lock:
            return self._reload_locks.setdefault(name, threading.Lock())

    def _reload(self, name: str) -> None:
        """Rebuild an evicted session from its stub (source + redo log).

        Serialized per name so concurrent touches pay for one rebuild; the
        rebuild itself runs outside the registry lock — other sessions keep
        serving while this one warms back up.
        """
        with self._reload_lock(name):
            with self._registry_lock:
                if name in self._graphs:
                    return  # another touch already reloaded it
                stub = self._evicted.get(name)
                if stub is None:
                    raise UnknownGraphError(name, self.graph_names())
            state = stub["load_state"]
            with obs.span("serve.reload", graph=name):
                try:
                    graph = load_serving_graph(
                        path=state["path"],
                        store=state["store"],
                        run_hash=state["run_hash"],
                    )
                except GraphSourceError as exc:
                    raise ServeError(
                        f"could not reload evicted session {name!r}: {exc}",
                        status=503,
                    ) from exc
                propagator_instance = PROPAGATORS[state["propagator"]](
                    max_iterations=state["iterations"],
                    tolerance=state["tolerance"],
                    **(state["propagator_kwargs"] or {}),
                )
                self.registry.reset_children(graph=name)
                session = StreamingSession(
                    graph,
                    propagator_instance,
                    compatibility=state["compatibility"],
                    seed_labels=state["seed_labels"],
                    localized=state["localized"],
                    strict=self.strict_deltas,
                    registry=self.registry,
                    metric_labels={"graph": name},
                )
                served = _ServedGraph(
                    name, session, dict(stub["source"]),
                    self.cache_entries, self.registry,
                )
                served.load_state = state
                with session.lock:
                    step = session.propagate()
                    served.record_solve(step.mode)
                    if self.queue is not None:
                        self._replay_queue(served)
            with self._registry_lock:
                self._evicted.pop(name, None)
                self._graphs[name] = served
                served.last_used = next(self._use_counter)
            self._c_reloads.inc()
        self._maybe_evict(keep=name)

    def unload(self, name: str) -> dict:
        """Drop a served graph; returns its final info dict."""
        with self._registry_lock:
            stub = self._evicted.pop(name, None)
            if stub is not None:
                # An evicted session unloads without being reloaded first.
                if self.queue is not None:
                    self.queue.drop(name)
                return {
                    "name": name,
                    "source": stub["source"],
                    "graph_version": stub["graph_version"],
                    "resident": False,
                }
            served = self._served(name)
            with served.session.lock:  # a consistent final snapshot
                info = served.info()
                served.evicted = True  # in-flight holders retry -> 404
            del self._graphs[name]
            if self.queue is not None:
                self.queue.drop(name)
            # Bound series cardinality: an unloaded graph stops exporting.
            self.registry.reset_children(graph=name)
        return info

    def info(self, name: str) -> dict:
        served = self._served(name)
        with served.session.lock:
            return served.info()

    def graph_stats(self, name: str) -> dict:
        """Solve-decision statistics for one served graph.

        Reports the per-mode solve counts (full / incremental / localized),
        the cumulative stored-nonzeros the solves visited, and the active
        kernel backend — the observability slice of the localized subsystem.
        """
        served = self._served(name)
        with served.session.lock:
            return {
                "graph": name,
                "n_solves": served.n_solves,
                "n_incremental": served.n_incremental,
                "n_localized": served.n_localized,
                "n_full": served.n_full,
                **served.session.decision_stats(),
            }

    def graph_quality(self, name: str) -> dict:
        """Model-quality telemetry for one served graph.

        The session's :class:`~repro.obs.quality.QualityMonitor` view:
        prequential (test-then-train) accuracy against revealed labels,
        belief churn, the calibration table, and the compatibility-drift
        gauge.  All-zero while ``REPRO_OBS=off``.
        """
        served = self._served(name)
        return {"graph": name, **served.session.quality_summary()}

    # -------------------------------------------------------------- queries
    @staticmethod
    def _check_nodes(nodes, n_nodes: int) -> np.ndarray:
        try:
            nodes = np.asarray(nodes, dtype=np.int64).ravel()
        except (TypeError, ValueError, OverflowError) as exc:
            # OverflowError: a node id too large for int64.
            raise ServeError(f"query nodes must be integers: {exc}") from exc
        if nodes.size == 0:
            raise ServeError("query needs at least one node")
        if nodes.min() < 0 or nodes.max() >= n_nodes:
            raise ServeError(
                f"query nodes must be in 0..{n_nodes - 1} "
                f"(got min {nodes.min()}, max {nodes.max()})"
            )
        return nodes

    def query(
        self, name: str, nodes, top_k: int | None = None,
        min_version: int | None = None,
    ) -> QueryResult:
        """Answer one query; equivalent to ``query_many`` with one request."""
        result = self.query_many(name, [(nodes, top_k, min_version)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def query_many(
        self, name: str, requests: list
    ) -> list[QueryResult | Exception]:
        """Answer many queries under one lock with one vectorized lookup.

        ``requests`` is a list of ``(nodes, top_k)`` pairs or
        ``(nodes, top_k, min_version)`` triples.  All cache misses are
        gathered from the belief matrix in a single fancy-index and (when
        any request wants a ranking) a single arg-sort — the vectorization
        the micro-batcher banks on.  Returns one :class:`QueryResult`
        **or** :class:`ServeError` per request, in order; per-request
        failures never poison their batch siblings.

        Read-your-writes: deltas acknowledged in deferred mode may leave
        the belief snapshot behind the graph — queries trigger the lazy
        propagation here, so every answer reflects every acknowledged
        delta.  A ``min_version`` token *ahead* of the session's
        ``graph_version`` fails that request with status 412: the fence
        that turns a lost acknowledged write (impossible while the durable
        queue is intact) into a loud error instead of a silently stale
        read.
        """
        query_start = time.perf_counter()
        with self._locked(name) as served, obs.span(
            "serve.query", graph=name, n_requests=len(requests)
        ):
            # Lazy refresh: deferred-ack deltas are propagated at the first
            # read that could observe them (one solve covers all of them).
            if served.propagated_version < served.graph_version:
                step = served.session.propagate()
                served.record_solve(step.mode)
                served.clear_pending()
            result = served.session.last_result
            if result is None:  # pragma: no cover - load always anchors
                raise ServeError(f"graph {name!r} has no beliefs yet", status=503)
            beliefs = result.beliefs
            labels = result.labels
            n_nodes = served.session.graph.n_nodes
            n_classes = beliefs.shape[1]
            version = served.belief_version

            outputs: list[QueryResult | Exception | None] = [None] * len(requests)
            misses: list[tuple[int, np.ndarray, int | None]] = []
            for position, request in enumerate(requests):
                nodes, top_k = request[0], request[1]
                min_version = request[2] if len(request) > 2 else None
                try:
                    if min_version is not None:
                        try:
                            min_version = int(min_version)
                        except (TypeError, ValueError) as exc:
                            raise ServeError(
                                f"min_version must be an integer: {exc}"
                            ) from exc
                        if min_version > served.graph_version:
                            raise ServeError(
                                f"read-your-writes fence: min_version "
                                f"{min_version} is ahead of graph "
                                f"{name!r} at version "
                                f"{served.graph_version} — the token "
                                "belongs to a different load, or the "
                                "session lost acknowledged writes",
                                status=412,
                            )
                    node_array = self._check_nodes(nodes, n_nodes)
                    if top_k is not None:
                        try:
                            top_k = int(top_k)
                        except (TypeError, ValueError) as exc:
                            raise ServeError(
                                f"top_k must be an integer: {exc}"
                            ) from exc
                        if not 1 <= top_k <= n_classes:
                            raise ServeError(
                                f"top_k must be in 1..{n_classes}, got {top_k}"
                            )
                except ServeError as exc:
                    outputs[position] = exc
                    continue
                key = (node_array.tobytes(), top_k)
                cached = (
                    None if served.cache is None
                    else served.cache.get(key, version)
                )
                if cached is not None:
                    hit = QueryResult(**cached, cached=True)
                    hit.staleness = served.staleness()
                    outputs[position] = hit
                else:
                    misses.append((position, node_array, top_k))

            if misses:
                gathered_nodes = np.concatenate([nodes for _, nodes, _ in misses])
                gathered_beliefs = beliefs[gathered_nodes]
                gathered_labels = labels[gathered_nodes]
                wants_ranking = any(top_k is not None for _, _, top_k in misses)
                order = (
                    np.argsort(-gathered_beliefs, axis=1, kind="stable")
                    if wants_ranking
                    else None
                )
                offset = 0
                for position, node_array, top_k in misses:
                    span = slice(offset, offset + node_array.shape[0])
                    offset += node_array.shape[0]
                    top = None
                    if top_k is not None:
                        ranks = order[span, :top_k]
                        scores = np.take_along_axis(
                            gathered_beliefs[span], ranks, axis=1
                        )
                        top = [
                            [[int(cls), float(score)]
                             for cls, score in zip(row_ranks, row_scores)]
                            for row_ranks, row_scores in zip(ranks, scores)
                        ]
                    payload = {
                        "name": name,
                        "nodes": node_array,
                        "beliefs": gathered_beliefs[span].copy(),
                        "labels": gathered_labels[span].copy(),
                        "top": top,
                        "graph_version": served.graph_version,
                        "belief_version": version,
                        "staleness": served.staleness(),
                    }
                    if served.cache is not None:
                        served.cache.put(
                            (node_array.tobytes(), top_k), version, dict(payload)
                        )
                    outputs[position] = QueryResult(**payload)

            n_answered = sum(
                1 for out in outputs if isinstance(out, QueryResult)
            )
            served.record_queries(n_answered, time.perf_counter() - query_start)
            return outputs

    # --------------------------------------------------------------- deltas
    def apply_delta(
        self, name: str, delta: GraphDelta, propagate: bool = True,
        delta_id: str | None = None,
    ) -> DeltaBatchResult:
        """Apply one delta (raising on rejection); one propagation follows."""
        outcome = self.apply_deltas(
            name, [delta], propagate=propagate, delta_ids=[delta_id]
        )
        if outcome.errors[0] is not None:
            raise ServeError(f"delta rejected: {outcome.errors[0]}")
        return outcome

    def apply_deltas(
        self, name: str, deltas: list, propagate: bool = True,
        delta_ids: list | None = None,
    ) -> DeltaBatchResult:
        """Apply a batch of deltas with a *single* incremental propagation.

        Each delta is validated and applied individually — a rejected one
        (strict-mode duplicate edge, out-of-range node ...) is reported in
        ``errors`` without blocking the rest.  The belief refresh happens
        once at the end, which is exactly the coalescing win: N concurrent
        deltas cost one propagation instead of N.

        Each accepted delta's apply order becomes its read-your-writes
        token in ``tokens``; with a durable queue attached, the delta is
        on disk *before* this method returns (the token is a durability
        receipt, not just an ordering one).  ``propagate=False`` defers
        the belief refresh — the acknowledgement returns as soon as the
        deltas are applied and durable; the refresh runs at the next
        eager-mode batch or lazily at the next query, so read-your-writes
        still holds.  ``delta_ids`` makes retries idempotent: an id the
        durable queue has already logged is acknowledged with its original
        token instead of being applied twice (a router re-sending after a
        worker death cannot double-apply).
        """
        delta_start = time.perf_counter()
        if delta_ids is not None and len(delta_ids) != len(deltas):
            raise ServeError(
                f"delta_ids length {len(delta_ids)} != deltas length "
                f"{len(deltas)}"
            )
        with self._locked(name) as served, obs.span(
            "serve.delta", graph=name, n_deltas=len(deltas)
        ) as delta_span:
            errors: list[str | None] = []
            tokens: list[int | None] = []
            n_applied = 0
            for position, delta in enumerate(deltas):
                delta_id = delta_ids[position] if delta_ids else None
                if self.queue is not None and delta_id is not None:
                    seq = self.queue.seen(name, delta_id)
                    if seq is not None:
                        # Idempotent retry: already durable and applied.
                        errors.append(None)
                        tokens.append(seq)
                        continue
                if not isinstance(delta, GraphDelta):
                    try:
                        delta = GraphDelta.from_dict(delta)
                    except (TypeError, ValueError) as exc:
                        errors.append(str(exc))
                        tokens.append(None)
                        continue
                try:
                    served.session.apply(delta)
                except (TypeError, ValueError) as exc:
                    errors.append(str(exc))
                    tokens.append(None)
                    continue
                served.graph_version += 1
                if self.queue is not None:
                    # Durable before acknowledged: the log must agree with
                    # the session (seq == graph_version) so recovery lands
                    # on the exact version the token names.
                    self.queue.append(
                        name, delta.to_dict(), delta_id=delta_id
                    )
                errors.append(None)
                tokens.append(served.graph_version)
                n_applied += 1
                served.record_delta_accepted()
            mode = reason = None
            propagate_seconds = 0.0
            propagated = False
            if n_applied and propagate:
                step = served.session.propagate()
                mode, reason = step.mode, step.decision.reason
                propagate_seconds = step.propagate_seconds
                served.record_solve(step.mode)
                served.clear_pending()
                propagated = True
            elif n_applied:
                reason = "deferred"
            if obs.enabled():
                # Quality attributes on the delta trace: the prequential
                # score of this batch's reveals and the post-apply drift,
                # so a sampled trace of a bad batch carries its own
                # quality context.
                monitor = served.session.quality
                delta_span.annotate(
                    prequential_last_accuracy=monitor.last_accuracy,
                    prequential_scored=monitor.scored,
                    drift=monitor.last_drift,
                    churn_flips_total=monitor.flips_total,
                )
            served._h_delta.observe(time.perf_counter() - delta_start)
            return DeltaBatchResult(
                name=name,
                n_deltas=len(deltas),
                n_applied=n_applied,
                errors=errors,
                mode=mode,
                reason=reason,
                propagate_seconds=propagate_seconds,
                graph_version=served.graph_version,
                belief_version=served.belief_version,
                n_coalesced=len(deltas),
                tokens=tokens,
                propagated=propagated,
            )

    # --------------------------------------------------------------- health
    def health(self) -> dict:
        """Per-graph liveness for ``GET /healthz``.

        A graph is *live* once its session holds a belief matrix (the
        anchoring solve completed and queries can be answered).  The
        session lock is probed, never waited on: a session mid-propagation
        is busy, not dead, and the health probe must answer immediately
        either way.
        """
        with self._registry_lock:
            served_list = list(self._graphs.values())
            stubs = {name: dict(stub) for name, stub in self._evicted.items()}
        graphs = {}
        for served in served_list:
            locked = served.session.lock.acquire(blocking=False)
            try:
                graphs[served.name] = {
                    "live": served.session.last_result is not None,
                    "busy": not locked,
                    "resident": True,
                    "graph_version": served.graph_version,
                    "belief_version": served.belief_version,
                    "staleness": served.staleness(),
                }
            finally:
                if locked:
                    served.session.lock.release()
        for name, stub in stubs.items():
            # Evicted-to-stub sessions are healthy but cold: their state is
            # fully recoverable (source + redo log), they just are not
            # holding memory right now.
            graphs[name] = {
                "live": True,
                "busy": False,
                "resident": False,
                "graph_version": stub["graph_version"],
            }
        return graphs

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Service-wide stats: per-graph info plus global tallies."""
        with self._registry_lock:
            served_list = list(self._graphs.values())
            stubs = {name: dict(stub) for name, stub in self._evicted.items()}
        graphs = {}
        for served in served_list:
            with served.session.lock:
                graphs[served.name] = served.info()
        stats = {
            "uptime_seconds": time.time() - self.started_at,
            "n_graphs": len(graphs) + len(stubs),
            "n_resident": len(graphs),
            "n_evicted": len(stubs),
            "max_sessions": self.max_sessions,
            "evictions": int(self._c_evictions.value),
            "reloads": int(self._c_reloads.value),
            "durable_queue": (
                None if self.queue is None else str(self.queue.directory)
            ),
            "n_queries": sum(info["n_queries"] for info in graphs.values()),
            "n_deltas": sum(info["n_deltas"] for info in graphs.values()),
            "n_solves": sum(info["n_solves"] for info in graphs.values()),
            "graphs": graphs,
        }
        for name, stub in stubs.items():
            stats["graphs"][name] = {
                "name": name,
                "source": stub["source"],
                "graph_version": stub["graph_version"],
                "resident": False,
                "n_queries": 0, "n_deltas": 0, "n_solves": 0,
            }
        return stats

    def quality(self) -> dict:
        """Quality telemetry for every resident graph plus a rollup.

        The rollup pools the prequential counts (so its accuracy is the
        example-weighted mean) and takes the worst (max) drift — one
        badly drifting graph should dominate the instance-level signal,
        not be averaged away.
        """
        with self._registry_lock:
            served_list = list(self._graphs.values())
        graphs = {}
        scored = correct = 0
        drift_values = []
        for served in served_list:
            summary = served.session.quality_summary()
            graphs[served.name] = summary
            scored += summary["prequential"]["scored"]
            correct += summary["prequential"]["correct"]
            drift = summary["drift"]["value"]
            if drift is not None:
                drift_values.append(drift)
        return {
            "graphs": graphs,
            "scored": scored,
            "correct": correct,
            "accuracy": (correct / scored) if scored else None,
            "max_drift": max(drift_values) if drift_values else None,
        }
