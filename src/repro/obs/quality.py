"""Online model-quality telemetry: prequential accuracy, churn, drift.

The speed side of the stack (PR 7 metrics, PR 8 SLOs) says nothing about
whether a long-lived session's *answers* are still good.  This module
adds the three quality signals the paper's evaluation revolves around,
computed online and strictly as observation — nothing here ever feeds
back into propagation numerics:

* **Prequential accuracy** (test-then-train): when a reveal delta
  arrives, the session's *current* beliefs are scored against the
  incoming labels before they are absorbed as seeds.  Every revealed,
  previously-unlabeled node inside the belief matrix is one test
  example; rolling totals, top-k hits, a per-class confusion table, and
  a calibration table (max-belief confidence buckets vs empirical
  correctness) accumulate over the session's lifetime.
* **Belief churn**: per-propagation L1 / L-infinity belief movement and
  argmax-flip counts.  Localized solves report churn over the trusted
  frontier (off-frontier rows are provably unchanged), dense solves
  over all nodes, so the two agree on the touched set.
* **Compatibility drift**: incremental neighbor-label pair statistics
  over the *observed* (seed-labeled) subgraph, maintained under deltas,
  row-normalized into an empirical compatibility estimate and compared
  to the session's frozen H as a normalized Frobenius distance.  This
  gauge is the input a future incremental-DCEr policy thresholds on.

Everything records through the shared :class:`MetricsRegistry`, so it
inherits the ``REPRO_OBS=off`` no-op switch, snapshot shipping, and the
Prometheus exposition for free.  The :class:`QualityMonitor` also keeps
plain-Python running state so ``summary()`` can serve a JSON view
(``GET /graphs/<name>/quality``, ``repro stream --json``) without
scraping metrics back out of the registry.
"""

from __future__ import annotations

import numpy as np

from repro import obs

__all__ = [
    "ACCURACY_BUCKETS",
    "CHURN_FLIP_BUCKETS",
    "N_CALIBRATION_BUCKETS",
    "QualityMonitor",
    "empirical_compatibility",
    "normalized_drift",
]

# Accuracy-fraction ladder: per-delta prequential accuracy and churn
# magnitudes both live in [0, 1]; a tenth-step ladder gives the SLO
# quantile machinery enough resolution for floors like "p50 >= 0.6".
ACCURACY_BUCKETS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
# Argmax flips per propagation: small-count ladder (most steps flip a
# handful of nodes; a full-graph relabel lands in the +Inf bucket).
CHURN_FLIP_BUCKETS = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0,
    4096.0, 16384.0, 65536.0,
)
# Calibration confidence bands: [0, 0.1), [0.1, 0.2) ... [0.9, 1.0].
N_CALIBRATION_BUCKETS = 10


def _argmax_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise argmax, specialized for the tall-and-narrow belief case.

    ``np.argmax(axis=1)`` pays per-row dispatch overhead that dominates
    when k is 2 or 3 (the common class counts here) — the specialized
    column comparisons below are ~5x faster at 100k rows and reproduce
    np.argmax's first-occurrence tie semantics exactly.
    """
    n, k = matrix.shape
    if k == 1:
        return np.zeros(n, dtype=np.int8)
    if k == 2:
        return (matrix[:, 1] > matrix[:, 0]).view(np.int8)
    if k == 3:
        c0, c1, c2 = matrix[:, 0], matrix[:, 1], matrix[:, 2]
        ge01 = c0 >= c1
        first = ge01 & (c0 >= c2)
        second = c1 >= c2
        second &= ~ge01
        # 2 - 2*first - second: first->0, second->1, else->2 (disjoint masks)
        indices = np.full(n, 2, dtype=np.int8)
        indices -= first.view(np.int8) << 1
        indices -= second.view(np.int8)
        return indices
    return np.argmax(matrix, axis=1)


def empirical_compatibility(pair_counts: np.ndarray) -> np.ndarray:
    """Row-normalize a label-pair count matrix into an H estimate.

    Rows with no observations fall back to uniform so the distance to a
    (row-normalized) frozen H stays defined for every class.
    """
    counts = np.asarray(pair_counts, dtype=np.float64)
    k = counts.shape[0]
    estimate = np.full((k, k), 1.0 / k)
    row_sums = counts.sum(axis=1)
    observed = row_sums > 0
    estimate[observed] = counts[observed] / row_sums[observed, None]
    return estimate


def normalized_drift(pair_counts: np.ndarray, compatibility: np.ndarray) -> float:
    """Normalized Frobenius distance between Ĥ(pair_counts) and H.

    Both matrices are row-normalized first, so the gauge compares the
    *shapes* of the neighbor-label distributions and is insensitive to
    H's overall scale convention (LinBP's centered residual form, raw
    DCE estimates, and stochastic matrices all compare cleanly).
    """
    reference = np.asarray(compatibility, dtype=np.float64)
    # Row-normalize over magnitudes so sign conventions (centered H)
    # survive; an all-zero row falls back to uniform like the estimate.
    scale = np.abs(reference).sum(axis=1)
    k = reference.shape[0]
    normalized = np.full((k, k), 1.0 / k)
    observed = scale > 0
    normalized[observed] = reference[observed] / scale[observed, None]
    estimate = empirical_compatibility(pair_counts)
    denom = float(np.linalg.norm(normalized))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(estimate - normalized) / denom)


class QualityMonitor:
    """Accumulates the three quality signals for one streaming session.

    The owning session calls the ``observe_*`` hooks only while
    ``obs.enabled()`` — the monitor itself never consults the flag for
    its plain-Python state, which keeps the hooks' semantics explicit
    (registry instruments additionally no-op on their own when
    recording is off).
    """

    def __init__(
        self,
        n_classes: int,
        registry=None,
        labels: dict | None = None,
        top_k: int = 2,
    ) -> None:
        self.n_classes = int(n_classes)
        self.top_k = max(1, min(int(top_k), self.n_classes))
        self.registry = registry if registry is not None else obs.metrics()
        self._labels = dict(labels or {})
        # Prequential rolling state.
        self.scored = 0
        self.correct = 0
        self.topk_hits = 0
        self.reveal_deltas = 0
        self.last_accuracy: float | None = None
        self.confusion = np.zeros((self.n_classes, self.n_classes), dtype=np.int64)
        self.calibration_total = np.zeros(N_CALIBRATION_BUCKETS, dtype=np.int64)
        self.calibration_correct = np.zeros(N_CALIBRATION_BUCKETS, dtype=np.int64)
        # Churn rolling state.
        self.churn_steps = 0
        self.flips_total = 0
        self.last_churn: dict | None = None
        # Drift state: symmetric neighbor-label pair counts over the
        # observed subgraph (each undirected edge contributes to both
        # orientations), plus the latest gauge value.
        self.pair_counts = np.zeros((self.n_classes, self.n_classes), dtype=np.float64)
        self.pairs_observed = 0.0
        self.last_drift: float | None = None

        labels = self._labels
        self._correct_counter = self.registry.counter(
            "repro_quality_prequential_total",
            "Prequentially scored reveals by outcome (test-then-train).",
            outcome="correct", **labels,
        )
        self._wrong_counter = self.registry.counter(
            "repro_quality_prequential_total",
            "Prequentially scored reveals by outcome (test-then-train).",
            outcome="wrong", **labels,
        )
        self._topk_counter = self.registry.counter(
            "repro_quality_topk_hits_total",
            "Prequential reveals whose true class was in the top-k beliefs.",
            **labels,
        )
        self._flip_counter = self.registry.counter(
            "repro_quality_flips_total",
            "Argmax label flips across streaming propagations.",
            **labels,
        )
        self._drift_gauge = self.registry.gauge(
            "repro_quality_drift",
            "Normalized distance between the empirical compatibility "
            "estimate and the session's frozen H.",
            **labels,
        )
        self._accuracy_histogram = self.registry.histogram(
            "repro_quality_prequential_accuracy",
            "Per-reveal-delta prequential accuracy (test-then-train).",
            buckets=ACCURACY_BUCKETS, **labels,
        )
        self._confidence_histogram = self.registry.histogram(
            "repro_quality_confidence",
            "Normalized max-belief confidence of prequentially scored nodes.",
            buckets=ACCURACY_BUCKETS, **labels,
        )
        self._confidence_correct_histogram = self.registry.histogram(
            "repro_quality_confidence_correct",
            "Confidence of prequentially scored nodes that were correct.",
            buckets=ACCURACY_BUCKETS, **labels,
        )
        # Lazily-populated instrument caches: registry lookups hash the
        # label set on every call, which is real money on the per-step
        # hot path (these hooks run inside every streaming step).
        self._confusion_counters: dict[tuple[int, int], object] = {}
        self._churn_histograms: dict[str, tuple] = {}
        # Argmax of the last belief matrix this monitor observed, keyed by
        # array identity.  Streaming sessions hand the prior step's result
        # back as ``previous`` (same object), so the cache saves one full
        # argmax pass per step; any other caller misses it and pays for
        # the honest recompute.
        self._argmax_cache: tuple | None = None

    # ---------------------------------------------------------- prequential
    def observe_reveal(
        self,
        beliefs: np.ndarray | None,
        reveal_nodes: np.ndarray,
        reveal_labels: np.ndarray,
        seed_labels: np.ndarray,
    ) -> float | None:
        """Score current beliefs against an incoming reveal (pre-absorb).

        Only nodes that (a) exist in the belief matrix and (b) are not
        already seeds count as test examples: a re-reveal of a known
        seed is a label *update*, not a prediction the model was asked
        to make, and a node revealed in the same delta that created it
        was never predicted at all.  Returns this delta's accuracy, or
        None when nothing was scorable.
        """
        if beliefs is None or reveal_nodes.shape[0] == 0:
            return None
        nodes = np.asarray(reveal_nodes, dtype=np.int64)
        truth = np.asarray(reveal_labels, dtype=np.int64)
        known = seed_labels[nodes] if nodes.shape[0] else nodes
        mask = (nodes < beliefs.shape[0]) & (known < 0)
        if not mask.any():
            return None
        nodes = nodes[mask]
        truth = truth[mask]
        rows = beliefs[nodes]
        predicted = np.argmax(rows, axis=1)
        correct_mask = predicted == truth
        n_scored = int(nodes.shape[0])
        n_correct = int(correct_mask.sum())
        accuracy = n_correct / n_scored

        if self.top_k >= self.n_classes:
            n_topk = n_scored
        else:
            top = np.argpartition(rows, -self.top_k, axis=1)[:, -self.top_k:]
            n_topk = int((top == truth[:, None]).any(axis=1).sum())

        # Calibration: normalized max-belief confidence in [1/k, 1].
        # Rows are only shifted when they contain negative entries
        # (centered-residual propagators); shifting a non-negative row
        # would zero its smallest entry and inflate the confidence.
        shifted = rows - np.minimum(rows.min(axis=1, keepdims=True), 0.0)
        mass = shifted.sum(axis=1)
        confidence = np.full(n_scored, 1.0 / self.n_classes)
        positive = mass > 0
        confidence[positive] = shifted[positive].max(axis=1) / mass[positive]
        buckets = np.clip(
            (confidence * N_CALIBRATION_BUCKETS).astype(np.int64),
            0, N_CALIBRATION_BUCKETS - 1,
        )

        self.scored += n_scored
        self.correct += n_correct
        self.topk_hits += n_topk
        self.reveal_deltas += 1
        self.last_accuracy = accuracy
        np.add.at(self.confusion, (truth, predicted), 1)
        np.add.at(self.calibration_total, buckets, 1)
        np.add.at(self.calibration_correct, buckets[correct_mask], 1)

        self._correct_counter.inc(n_correct)
        self._wrong_counter.inc(n_scored - n_correct)
        self._topk_counter.inc(n_topk)
        self._accuracy_histogram.observe(accuracy)
        pairs, pair_counts = np.unique(
            truth * self.n_classes + predicted, return_counts=True
        )
        for pair, count in zip(pairs, pair_counts):
            self._confusion_counter(
                int(pair) // self.n_classes, int(pair) % self.n_classes
            ).inc(int(count))
        for value, was_correct in zip(confidence, correct_mask):
            self._confidence_histogram.observe(float(value))
            if was_correct:
                self._confidence_correct_histogram.observe(float(value))
        return accuracy

    def _confusion_counter(self, true_label: int, predicted_label: int):
        counter = self._confusion_counters.get((true_label, predicted_label))
        if counter is None:
            counter = self.registry.counter(
                "repro_quality_confusion_total",
                "Prequential confusion counts (true vs predicted class).",
                true=true_label, predicted=predicted_label, **self._labels,
            )
            self._confusion_counters[(true_label, predicted_label)] = counter
        return counter

    # ---------------------------------------------------------------- churn
    def observe_churn(
        self,
        previous: np.ndarray,
        current: np.ndarray,
        rows: np.ndarray | None = None,
        mode: str = "full",
    ) -> dict | None:
        """Record belief movement between two propagations.

        ``rows`` restricts the comparison to the localized solver's
        trusted frontier (every off-frontier row is provably unchanged,
        so the restriction is exact, not an approximation); dense modes
        pass None and compare all shared rows.
        """
        n_shared = min(previous.shape[0], current.shape[0])
        if n_shared == 0 or previous.shape[1] != current.shape[1]:
            return None
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            rows = rows[(rows >= 0) & (rows < n_shared)]
            if rows.shape[0] == 0:
                before, after = previous[:0], current[:0]
            else:
                before, after = previous[rows], current[rows]
        else:
            before, after = previous[:n_shared], current[:n_shared]
        n_compared = int(before.shape[0])
        if n_compared == 0:
            movement_l1 = 0.0
            movement_linf = 0.0
            flips = 0
        else:
            diff = after - before
            np.abs(diff, out=diff)
            movement_l1 = float(diff.sum()) / n_compared
            movement_linf = float(diff.max())
            before_argmax = None
            cached = self._argmax_cache
            if cached is not None and cached[0] is previous:
                full_argmax = cached[1]
                if rows is not None:
                    before_argmax = full_argmax[rows]
                elif full_argmax.shape[0] >= n_shared:
                    before_argmax = full_argmax[:n_shared]
            if before_argmax is None:
                before_argmax = _argmax_rows(before)
            if rows is None:
                # Cache over ALL of current (not just the shared prefix):
                # next step's previous is this matrix, possibly grown.
                current_argmax = _argmax_rows(current)
                after_argmax = current_argmax[:n_shared]
                self._argmax_cache = (current, current_argmax)
            else:
                after_argmax = _argmax_rows(after)
            flips = int((after_argmax != before_argmax).sum())

        self.churn_steps += 1
        self.flips_total += flips
        self.last_churn = {
            "mode": mode,
            "n_compared": n_compared,
            "l1_per_node": movement_l1,
            "linf": movement_linf,
            "flips": flips,
        }

        self._flip_counter.inc(flips)
        h_l1, h_linf, h_flips = self._churn_instruments(mode)
        h_l1.observe(movement_l1)
        h_linf.observe(movement_linf)
        h_flips.observe(float(flips))
        return self.last_churn

    def _churn_instruments(self, mode: str) -> tuple:
        instruments = self._churn_histograms.get(mode)
        if instruments is None:
            labels = self._labels
            instruments = (
                self.registry.histogram(
                    "repro_quality_churn_l1",
                    "Mean per-node L1 belief movement per propagation.",
                    buckets=obs.RESIDUAL_BUCKETS, mode=mode, **labels,
                ),
                self.registry.histogram(
                    "repro_quality_churn_linf",
                    "Max absolute belief movement per propagation.",
                    buckets=obs.RESIDUAL_BUCKETS, mode=mode, **labels,
                ),
                self.registry.histogram(
                    "repro_quality_churn_flips",
                    "Argmax label flips per propagation.",
                    buckets=CHURN_FLIP_BUCKETS, mode=mode, **labels,
                ),
            )
            self._churn_histograms[mode] = instruments
        return instruments

    # ---------------------------------------------------------------- drift
    def _add_pair(self, a: int, b: int, amount: float = 1.0) -> None:
        self.pair_counts[a, b] += amount
        self.pair_counts[b, a] += amount
        self.pairs_observed = max(0.0, self.pairs_observed + amount)
        if self.pair_counts[a, b] < 0:
            self.pair_counts[a, b] = 0.0
        if self.pair_counts[b, a] < 0:
            self.pair_counts[b, a] = 0.0

    def _edge_label_pairs(
        self, edges: np.ndarray, seed_labels: np.ndarray, sign: float
    ) -> None:
        if edges.shape[0] == 0:
            return
        n_known = seed_labels.shape[0]
        u, v = edges[:, 0], edges[:, 1]
        valid = (u >= 0) & (u < n_known) & (v >= 0) & (v < n_known)
        if not valid.any():
            return
        lu = seed_labels[u[valid]]
        lv = seed_labels[v[valid]]
        both = (lu >= 0) & (lv >= 0)
        a, b = lu[both], lv[both]
        if a.shape[0] == 0:
            return
        np.add.at(self.pair_counts, (a, b), sign)
        np.add.at(self.pair_counts, (b, a), sign)
        np.clip(self.pair_counts, 0.0, None, out=self.pair_counts)
        self.pairs_observed = max(0.0, self.pairs_observed + sign * a.shape[0])

    def observe_edges(self, delta, seed_labels: np.ndarray) -> None:
        """Fold a delta's structural edge changes into the pair counts.

        Runs against pre-reveal labels: an edge touching a node revealed
        in the same delta is picked up once by :meth:`observe_reveal_pairs`
        instead, so each observed edge is counted exactly once.
        """
        self._edge_label_pairs(delta.add_edges, seed_labels, 1.0)
        self._edge_label_pairs(delta.remove_edges, seed_labels, -1.0)

    def observe_reveal_pairs(
        self,
        adjacency,
        reveal_nodes: np.ndarray,
        old_labels: np.ndarray,
        seed_labels: np.ndarray,
    ) -> None:
        """Fold label reveals into the pair counts (post-absorb).

        ``old_labels`` holds the pre-reveal seed label of each revealed
        node (-1 when it was hidden).  For every node whose label
        actually changed, its edges to labeled neighbors are re-counted:
        old-label pairs removed, new-label pairs added.  An edge between
        two nodes changed in the same delta is owned by the smaller id
        so it is adjusted exactly once.
        """
        nodes = np.asarray(reveal_nodes, dtype=np.int64)
        if nodes.shape[0] == 0:
            return
        old = np.asarray(old_labels, dtype=np.int64)
        changed_mask = seed_labels[nodes] != old
        if not changed_mask.any():
            return
        old_by_node = {int(n): int(o) for n, o in zip(nodes, old)}
        changed = set(int(n) for n in nodes[changed_mask])
        indptr, indices = adjacency.indptr, adjacency.indices
        n_nodes = seed_labels.shape[0]
        for node in sorted(changed):
            if node >= indptr.shape[0] - 1:
                continue
            node_old = old_by_node[node]
            node_new = int(seed_labels[node])
            for neighbor in indices[indptr[node]: indptr[node + 1]]:
                neighbor = int(neighbor)
                if neighbor in changed and neighbor < node:
                    continue  # owned by the smaller endpoint
                if neighbor >= n_nodes:
                    continue
                neighbor_new = int(seed_labels[neighbor])
                neighbor_old = old_by_node.get(neighbor, neighbor_new)
                if node_old >= 0 and neighbor_old >= 0:
                    self._add_pair(node_old, neighbor_old, -1.0)
                if node_new >= 0 and neighbor_new >= 0:
                    self._add_pair(node_new, neighbor_new, 1.0)

    def seed_pairs(self, adjacency, seed_labels: np.ndarray) -> None:
        """Initialize pair counts from an anchor graph's observed edges.

        Counts each stored (directed) CSR entry between two labeled
        nodes once — on a symmetric adjacency that yields both
        orientations, matching the symmetric incremental updates.
        """
        indptr, indices = adjacency.indptr, adjacency.indices
        n_nodes = min(seed_labels.shape[0], indptr.shape[0] - 1)
        if n_nodes <= 0 or not (seed_labels >= 0).any():
            return
        u = np.repeat(
            np.arange(n_nodes, dtype=np.int64), np.diff(indptr[: n_nodes + 1])
        )
        v = indices[: indptr[n_nodes]].astype(np.int64, copy=False)
        # Each undirected edge appears twice in a symmetric CSR; take the
        # (u <= v) orientation as the owner.
        mask = (u <= v) & (v < seed_labels.shape[0])
        lu = seed_labels[u[mask]]
        lv = seed_labels[v[mask]]
        both = (lu >= 0) & (lv >= 0)
        a, b = lu[both], lv[both]
        if a.shape[0] == 0:
            return
        np.add.at(self.pair_counts, (a, b), 1.0)
        np.add.at(self.pair_counts, (b, a), 1.0)
        self.pairs_observed += float(a.shape[0])

    def refresh_drift(self, compatibility: np.ndarray | None) -> float | None:
        """Recompute and publish the drift gauge; returns the value."""
        if compatibility is None:
            return None
        value = normalized_drift(self.pair_counts, compatibility)
        self.last_drift = value
        self._drift_gauge.set(value)
        return value

    # -------------------------------------------------------------- summary
    @property
    def accuracy(self) -> float | None:
        """Lifetime prequential accuracy, or None before any scoring."""
        if self.scored == 0:
            return None
        return self.correct / self.scored

    def summary(self) -> dict:
        """JSON-safe view for /quality endpoints and replay reports."""
        calibration = []
        for index in range(N_CALIBRATION_BUCKETS):
            total = int(self.calibration_total[index])
            correct = int(self.calibration_correct[index])
            calibration.append({
                "confidence_low": index / N_CALIBRATION_BUCKETS,
                "confidence_high": (index + 1) / N_CALIBRATION_BUCKETS,
                "total": total,
                "correct": correct,
                "empirical_accuracy": (correct / total) if total else None,
            })
        return {
            "prequential": {
                "scored": int(self.scored),
                "correct": int(self.correct),
                "accuracy": self.accuracy,
                "topk_hits": int(self.topk_hits),
                "top_k": int(self.top_k),
                "reveal_deltas": int(self.reveal_deltas),
                "last_accuracy": self.last_accuracy,
            },
            "confusion": self.confusion.tolist(),
            "calibration": calibration,
            "churn": {
                "steps": int(self.churn_steps),
                "flips_total": int(self.flips_total),
                "last": self.last_churn,
            },
            "drift": {
                "value": self.last_drift,
                "pairs_observed": float(self.pairs_observed),
            },
        }
