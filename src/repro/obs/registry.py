"""Thread-safe metrics: counters, gauges, and fixed-bucket histograms.

The registry is dependency-free and designed for the repo's three
execution shapes:

* **threads** — every instrument in a registry shares that registry's
  lock, so concurrent increments from the serve HTTP handler pool and
  the MicroBatcher worker are exact;
* **processes** — :meth:`MetricsRegistry.snapshot` produces a plain
  picklable dict and :func:`diff_snapshots` a before/after delta, which
  the runner's multiprocessing workers ship back through the existing
  result channel for :meth:`MetricsRegistry.merge_snapshot`;
* **scraping** — :meth:`MetricsRegistry.render_prometheus` emits the
  Prometheus text exposition format served by ``GET /metrics``.

Histograms use fixed upper-bound buckets (no sample storage), so p50/
p95/p99 come from bucket interpolation at read time and the write path
is a bisect plus two adds.  All recording methods no-op when
``REPRO_OBS=off`` (see :mod:`repro.obs._flags`).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Iterable, Mapping

from repro.obs import trace as _trace
from repro.obs._flags import enabled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "render_prometheus",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "ITERATION_BUCKETS",
    "RESIDUAL_BUCKETS",
]

# Default bucket ladders.  Latencies span 100us..30s (the serve p99 at
# 60k nodes is ~3ms, a cold 1M-node solve tens of seconds); sizes are a
# power-of-two ladder covering batch sizes up to 1M-edge frontiers;
# iteration counts cover fixed-point solves; residuals are decades down
# to numerical noise.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)
SIZE_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
)
ITERATION_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)
RESIDUAL_BUCKETS = (
    1e-14, 1e-12, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3,
    1e-2, 1e-1, 1.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")
    kind = "counter"

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not enabled():
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("_lock", "_value")
    kind = "gauge"

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        if not enabled():
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not enabled():
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches everything beyond the last bound.  Quantiles interpolate
    linearly inside the selected bucket, which is exact enough for the
    p50/p95/p99 dashboards this feeds (and costs no sample storage).

    While tracing is active, each observation made inside a *sampled*
    span leaves an **exemplar** — the observed value plus its trace id —
    on the bucket it landed in (last write wins, so memory stays one slot
    per bucket).  ``repro stats --trace-id`` then turns "the p99 got
    worse" into "here is a whole request tree that slow".  Exemplars are
    point-in-time debug state: excluded from snapshots/merges, rendered
    only on request (OpenMetrics syntax).
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count", "exemplars")
    kind = "histogram"

    def __init__(self, lock: threading.RLock, buckets: Iterable[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted and unique")
        self._lock = lock
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0
        self.exemplars: dict[int, dict] = {}

    def observe(self, value: float) -> None:
        if not enabled():
            return
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
        if _trace.tracing_active():
            context = _trace.current_context()
            if context is not None and getattr(context, "sampled", True):
                with self._lock:
                    self.exemplars[index] = {
                        "value": value, "trace_id": context.trace_id,
                    }

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from bucket counts."""
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self.buckets):
                    # +Inf bucket: the best point estimate is the last
                    # finite bound.
                    return self.buckets[-1]
                lower = 0.0 if index == 0 else self.buckets[index - 1]
                upper = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str, buckets):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        # label-tuple -> instrument; the key is the sorted (name, value)
        # pairs so label order at the call site does not matter.
        self.children: dict[tuple, object] = {}


def _label_key(labels: Mapping[str, object]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of metric families sharing one lock."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        # (name, kind, label_key) -> instrument.  Lookups on the hot path
        # (engine/push record a dozen instruments per solve) hit this flat
        # dict without taking the lock or re-validating names — safe under
        # the GIL because entries are only ever added for instruments that
        # already passed the slow path, and cleared wholesale on reset.
        self._fast: dict[tuple, object] = {}

    # -- instrument accessors -------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        child = self._fast.get((name, "counter", _label_key(labels)))
        if child is not None:
            return child
        return self._child(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        child = self._fast.get((name, "gauge", _label_key(labels)))
        if child is not None:
            return child
        return self._child(name, "gauge", help, None, labels)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = LATENCY_BUCKETS, **labels
    ) -> Histogram:
        child = self._fast.get((name, "histogram", _label_key(labels)))
        if child is not None:
            return child
        return self._child(name, "histogram", help, tuple(float(b) for b in buckets), labels)

    def _child(self, name, kind, help_text, buckets, labels):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name: {label!r}")
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter(self._lock)
                elif kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, buckets or family.buckets or LATENCY_BUCKETS)
                family.children[key] = child
            self._fast[(name, kind, key)] = child
            return child

    def get(self, name: str, **labels):
        """Existing instrument for (name, labels), or None."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def families(self) -> dict:
        """Point-in-time copy of {name: (kind, help, {label_key: instrument})}."""
        with self._lock:
            return {
                name: (family.kind, family.help, dict(family.children))
                for name, family in self._families.items()
            }

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self._fast.clear()

    def reset_children(self, **labels) -> int:
        """Drop every instrument whose labels contain all given pairs.

        Used when a served graph is (re)loaded so its lifetime counters
        restart from zero, matching the pre-registry per-graph fields.
        Returns the number of instruments removed.
        """
        wanted = set((k, str(v)) for k, v in labels.items())
        removed = 0
        with self._lock:
            for family in self._families.values():
                stale = [key for key in family.children if wanted <= set(key)]
                for key in stale:
                    del family.children[key]
                removed += len(stale)
            if removed:
                self._fast.clear()
        return removed

    # -- cross-process shipping -----------------------------------------------

    def snapshot(self) -> dict:
        """Picklable/JSON-safe dump of every family and child."""
        with self._lock:
            families = {}
            for name, family in self._families.items():
                children = {}
                for key, instrument in family.children.items():
                    if family.kind == "histogram":
                        children[key] = {
                            "counts": list(instrument.counts),
                            "sum": instrument.sum,
                            "count": instrument.count,
                        }
                    else:
                        children[key] = {"value": instrument.value}
                families[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "buckets": list(family.buckets) if family.buckets else None,
                    "children": [[list(map(list, key)), payload] for key, payload in children.items()],
                }
            return {"families": families}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (typically a worker's diff) into this registry.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins).  Ignores the enable flag: merging shipped
        results must work even if recording was toggled meanwhile.
        """
        for name, payload in snapshot.get("families", {}).items():
            kind = payload["kind"]
            buckets = payload.get("buckets")
            for raw_key, child in payload.get("children", []):
                labels = {k: v for k, v in raw_key}
                if kind == "counter":
                    instrument = self.counter(name, payload.get("help", ""), **labels)
                    with self._lock:
                        instrument._value += child["value"]
                elif kind == "gauge":
                    instrument = self.gauge(name, payload.get("help", ""), **labels)
                    with self._lock:
                        instrument._value = child["value"]
                else:
                    instrument = self.histogram(
                        name, payload.get("help", ""), buckets=buckets or LATENCY_BUCKETS, **labels
                    )
                    counts = child["counts"]
                    if len(counts) != len(instrument.counts):
                        raise ValueError(
                            f"histogram {name!r} bucket layout mismatch in snapshot merge"
                        )
                    with self._lock:
                        for index, extra in enumerate(counts):
                            instrument.counts[index] += extra
                        instrument.sum += child["sum"]
                        instrument.count += child["count"]

    # -- exposition -----------------------------------------------------------

    def render_prometheus(self, exemplars: bool = False) -> str:
        return render_prometheus([self], exemplars=exemplars)


def diff_snapshots(before: dict, after: dict) -> dict:
    """Delta between two snapshots of the same registry.

    Counter/histogram values subtract; gauges keep the ``after`` value.
    The result is itself a snapshot, suitable for ``merge_snapshot``.
    Families or children absent from ``before`` pass through whole.
    """
    result: dict = {"families": {}}
    before_families = before.get("families", {})
    for name, payload in after.get("families", {}).items():
        base = before_families.get(name, {})
        base_children = {tuple(map(tuple, key)): child for key, child in base.get("children", [])}
        kind = payload["kind"]
        out_children = []
        for raw_key, child in payload.get("children", []):
            key = tuple(map(tuple, raw_key))
            prior = base_children.get(key)
            if kind == "gauge" or prior is None:
                # Instrument *creation* happens even while recording is
                # disabled, so a brand-new child can still be all-zero —
                # shipping it would be noise (and, merged, would register
                # phantom series on the target registry).  Likewise an
                # unchanged gauge carries no information in a delta.
                if prior is None and kind == "counter" and not child["value"]:
                    continue
                if prior is None and kind == "histogram" and not child["count"]:
                    continue
                if kind == "gauge":
                    if prior is None and not child["value"]:
                        continue
                    if prior is not None and child["value"] == prior["value"]:
                        continue
                delta = dict(child)
            elif kind == "counter":
                delta = {"value": child["value"] - prior["value"]}
                if delta["value"] == 0:
                    continue
            else:
                delta = {
                    "counts": [a - b for a, b in zip(child["counts"], prior["counts"])],
                    "sum": child["sum"] - prior["sum"],
                    "count": child["count"] - prior["count"],
                }
                if delta["count"] == 0:
                    continue
            out_children.append([list(map(list, key)), delta])
        if out_children:
            result["families"][name] = {
                "kind": kind,
                "help": payload.get("help", ""),
                "buckets": payload.get("buckets"),
                "children": out_children,
            }
    return result


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _exemplar_suffix(instrument, index: int) -> str:
    """OpenMetrics exemplar tail for one bucket line, or ''."""
    exemplar = instrument.exemplars.get(index)
    if exemplar is None:
        return ""
    return (
        f' # {{trace_id="{_escape_label_value(exemplar["trace_id"])}"}}'
        f' {_format_value(exemplar["value"])}'
    )


def render_prometheus(registries, exemplars: bool = False) -> str:
    """Prometheus text exposition (format 0.0.4) for one or more registries.

    When multiple registries carry the same family name (e.g. a private
    service registry plus the process-global one), the first registry's
    family wins — callers keep family names disjoint by convention.

    ``exemplars=True`` appends OpenMetrics-style exemplar tails
    (``# {trace_id="..."} value``) to histogram bucket lines that have
    one.  The default output stays plain 0.0.4 so render -> parse ->
    re-render remains an identity (the parser tolerates and drops the
    tails either way).
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for name, (kind, help_text, children) in sorted(registry.families().items()):
            if name in seen:
                continue
            seen.add(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(children):
                instrument = children[key]
                pairs = list(key)
                if kind == "histogram":
                    cumulative = 0
                    for index, bound in enumerate(instrument.buckets):
                        cumulative += instrument.counts[index]
                        bucket_pairs = pairs + [("le", _format_value(bound))]
                        tail = _exemplar_suffix(instrument, index) if exemplars else ""
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_pairs)} {cumulative}{tail}"
                        )
                    cumulative += instrument.counts[-1]
                    tail = (
                        _exemplar_suffix(instrument, len(instrument.buckets))
                        if exemplars else ""
                    )
                    lines.append(
                        f"{name}_bucket{_format_labels(pairs + [('le', '+Inf')])} {cumulative}{tail}"
                    )
                    lines.append(f"{name}_sum{_format_labels(pairs)} {_format_value(instrument.sum)}")
                    lines.append(f"{name}_count{_format_labels(pairs)} {cumulative}")
                else:
                    lines.append(
                        f"{name}{_format_labels(pairs)} {_format_value(instrument.value)}"
                    )
    return "\n".join(lines) + "\n" if lines else ""
