"""Declarative SLO / alert rules evaluated over recorded time series.

A :class:`SloSpec` is a JSON-loadable list of rules; each rule names a
metric, a window, and a bound, and evaluates against a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` to a
:class:`RuleStatus`.  The serve layer attaches a spec to its recorder
(``repro serve --slo spec.json``): every sample re-evaluates the rules,
``GET /healthz`` degrades to 503 while any rule fires (naming it), and
``GET /alerts`` lists every status.

Rule kinds (``kind`` field):

``quantile_max``
    Sliding-window histogram quantile must stay <= ``max`` (latency SLOs:
    ``{"metric": "repro_http_request_seconds", "q": 0.99, "max": 0.25}``).
``min_quantile``
    Sliding-window histogram quantile must stay >= ``min`` — the
    quality-floor dual of ``quantile_max`` (accuracy SLOs:
    ``{"metric": "repro_quality_prequential_accuracy", "q": 0.5,
    "min": 0.6}``).
``rate_max`` / ``rate_min``
    Windowed counter rate ceiling / floor (error-rate ceilings, traffic
    liveness floors).
``gauge_max`` / ``gauge_min``
    Latest gauge bound (queue-depth saturation).
``ratio_max``
    Windowed rate of ``metric`` over rate of ``denominator`` must stay <=
    ``max`` (classic error *ratio*).
``burn_rate``
    Multi-window error-budget burn: the error ratio must exceed
    ``factor * budget`` in **both** the short and the long window to fire
    — fast enough to page on a real burn, immune to one-sample blips.

Label selectors (``labels`` / ``denominator_labels``) are regex-fullmatch
maps, so ``{"status": "5.."}`` selects the whole 5xx class.  Rules with
insufficient recorded history report ``ok`` with ``data: false`` — a
just-started service is not degraded, it is unknown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RuleStatus", "SloRule", "SloSpec", "SloSpecError"]

_KINDS = (
    "quantile_max",
    "min_quantile",
    "rate_max",
    "rate_min",
    "gauge_max",
    "gauge_min",
    "ratio_max",
    "burn_rate",
)


class SloSpecError(ValueError):
    """The SLO spec file/dict is malformed; names the offending rule."""


@dataclass
class RuleStatus:
    """One rule's latest evaluation."""

    name: str
    kind: str
    ok: bool
    value: float | None
    threshold: float
    data: bool  # enough recorded history to evaluate?
    detail: str = ""

    @property
    def firing(self) -> bool:
        """A rule fires only on real data — no data means unknown, not bad."""
        return self.data and not self.ok

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "firing": self.firing,
            "value": self.value,
            "threshold": self.threshold,
            "data": self.data,
            "detail": self.detail,
        }


def _require(condition: bool, rule_name: str, message: str) -> None:
    if not condition:
        raise SloSpecError(f"rule {rule_name!r}: {message}")


@dataclass
class SloRule:
    """One declarative rule (see module docstring for the kinds)."""

    name: str
    kind: str
    metric: str
    labels: dict = field(default_factory=dict)
    window_seconds: float = 60.0
    # quantile_max
    q: float = 0.99
    # *_max / *_min bounds
    max: float | None = None
    min: float | None = None
    # ratio_max / burn_rate
    denominator: str | None = None
    denominator_labels: dict = field(default_factory=dict)
    # burn_rate
    budget: float | None = None
    factor: float = 14.4
    short_window_seconds: float = 60.0
    long_window_seconds: float = 3600.0

    @classmethod
    def from_dict(cls, payload: dict) -> "SloRule":
        if not isinstance(payload, dict):
            raise SloSpecError(f"rule must be an object, got {type(payload).__name__}")
        name = payload.get("name")
        _require(isinstance(name, str) and bool(name), str(name), "needs a non-empty 'name'")
        kind = payload.get("kind")
        _require(kind in _KINDS, name, f"unknown kind {kind!r} (valid: {', '.join(_KINDS)})")
        metric = payload.get("metric")
        _require(isinstance(metric, str) and bool(metric), name, "needs a 'metric' name")
        known = {
            "name", "kind", "metric", "labels", "window_seconds", "q", "max",
            "min", "denominator", "denominator_labels", "budget", "factor",
            "short_window_seconds", "long_window_seconds",
        }
        unknown = set(payload) - known
        _require(not unknown, name, f"unknown fields {sorted(unknown)}")
        rule = cls(
            name=name,
            kind=kind,
            metric=metric,
            labels=dict(payload.get("labels") or {}),
            window_seconds=float(payload.get("window_seconds", 60.0)),
            q=float(payload.get("q", 0.99)),
            max=None if payload.get("max") is None else float(payload["max"]),
            min=None if payload.get("min") is None else float(payload["min"]),
            denominator=payload.get("denominator"),
            denominator_labels=dict(payload.get("denominator_labels") or {}),
            budget=None if payload.get("budget") is None else float(payload["budget"]),
            factor=float(payload.get("factor", 14.4)),
            short_window_seconds=float(payload.get("short_window_seconds", 60.0)),
            long_window_seconds=float(payload.get("long_window_seconds", 3600.0)),
        )
        if kind in ("quantile_max", "rate_max", "gauge_max", "ratio_max"):
            _require(rule.max is not None, name, f"kind {kind} needs 'max'")
        if kind in ("min_quantile", "rate_min", "gauge_min"):
            _require(rule.min is not None, name, f"kind {kind} needs 'min'")
        if kind in ("quantile_max", "min_quantile"):
            _require(0.0 < rule.q < 1.0, name, "'q' must be in (0, 1)")
        if kind in ("ratio_max", "burn_rate"):
            _require(bool(rule.denominator), name, f"kind {kind} needs 'denominator'")
        if kind == "burn_rate":
            _require(rule.budget is not None and rule.budget > 0, name,
                     "kind burn_rate needs a positive 'budget'")
        return rule

    # ------------------------------------------------------------ evaluation
    def evaluate(self, recorder) -> RuleStatus:
        handler = getattr(self, f"_eval_{self.kind}")
        return handler(recorder)

    def _status(self, ok: bool, value, threshold, data: bool, detail: str) -> RuleStatus:
        return RuleStatus(
            name=self.name, kind=self.kind, ok=ok,
            value=None if value is None else float(value),
            threshold=float(threshold), data=data, detail=detail,
        )

    def _no_data(self, threshold) -> RuleStatus:
        return self._status(True, None, threshold, False, "insufficient history")

    def _eval_quantile_max(self, recorder) -> RuleStatus:
        value = recorder.quantile(
            self.metric, self.q, self.window_seconds, **self.labels
        )
        if value is None:
            return self._no_data(self.max)
        ok = value <= self.max
        return self._status(
            ok, value, self.max, True,
            f"p{self.q * 100:g} over {self.window_seconds:g}s = {value:.6g} "
            f"({'<=' if ok else '>'} {self.max:g})",
        )

    def _eval_min_quantile(self, recorder) -> RuleStatus:
        value = recorder.quantile(
            self.metric, self.q, self.window_seconds, **self.labels
        )
        if value is None:
            return self._no_data(self.min)
        ok = value >= self.min
        return self._status(
            ok, value, self.min, True,
            f"p{self.q * 100:g} over {self.window_seconds:g}s = {value:.6g} "
            f"({'>=' if ok else '<'} {self.min:g})",
        )

    def _rate(self, recorder):
        return recorder.counter_rate(self.metric, self.window_seconds, **self.labels)

    def _eval_rate_max(self, recorder) -> RuleStatus:
        value = self._rate(recorder)
        if value is None:
            return self._no_data(self.max)
        ok = value <= self.max
        return self._status(
            ok, value, self.max, True,
            f"rate over {self.window_seconds:g}s = {value:.6g}/s "
            f"({'<=' if ok else '>'} {self.max:g})",
        )

    def _eval_rate_min(self, recorder) -> RuleStatus:
        value = self._rate(recorder)
        if value is None:
            return self._no_data(self.min)
        ok = value >= self.min
        return self._status(
            ok, value, self.min, True,
            f"rate over {self.window_seconds:g}s = {value:.6g}/s "
            f"({'>=' if ok else '<'} {self.min:g})",
        )

    def _eval_gauge_max(self, recorder) -> RuleStatus:
        value = recorder.gauge(self.metric, **self.labels)
        if value is None:
            return self._no_data(self.max)
        ok = value <= self.max
        return self._status(
            ok, value, self.max, True,
            f"gauge = {value:.6g} ({'<=' if ok else '>'} {self.max:g})",
        )

    def _eval_gauge_min(self, recorder) -> RuleStatus:
        value = recorder.gauge(self.metric, **self.labels)
        if value is None:
            return self._no_data(self.min)
        ok = value >= self.min
        return self._status(
            ok, value, self.min, True,
            f"gauge = {value:.6g} ({'>=' if ok else '<'} {self.min:g})",
        )

    def _ratio(self, recorder, window_seconds: float) -> float | None:
        numerator = recorder.counter_delta(self.metric, window_seconds, **self.labels)
        denominator = recorder.counter_delta(
            self.denominator, window_seconds, **self.denominator_labels
        )
        if denominator is None or denominator <= 0:
            return None  # no traffic: a ratio over zero events is undefined
        return (numerator or 0.0) / denominator

    def _eval_ratio_max(self, recorder) -> RuleStatus:
        value = self._ratio(recorder, self.window_seconds)
        if value is None:
            return self._no_data(self.max)
        ok = value <= self.max
        return self._status(
            ok, value, self.max, True,
            f"ratio over {self.window_seconds:g}s = {value:.6g} "
            f"({'<=' if ok else '>'} {self.max:g})",
        )

    def _eval_burn_rate(self, recorder) -> RuleStatus:
        threshold = self.factor * self.budget
        short = self._ratio(recorder, self.short_window_seconds)
        long = self._ratio(recorder, self.long_window_seconds)
        if short is None or long is None:
            return self._no_data(threshold)
        # Both windows must burn: the short one gives detection speed, the
        # long one rejects single-sample blips.
        ok = not (short > threshold and long > threshold)
        return self._status(
            ok, short, threshold, True,
            f"error ratio short/{self.short_window_seconds:g}s = {short:.6g}, "
            f"long/{self.long_window_seconds:g}s = {long:.6g} "
            f"(budget x factor = {threshold:.6g})",
        )


@dataclass
class SloSpec:
    """An ordered list of rules loaded from JSON."""

    rules: list

    @classmethod
    def from_dict(cls, payload: dict) -> "SloSpec":
        if not isinstance(payload, dict) or "rules" not in payload:
            raise SloSpecError("spec must be an object with a 'rules' list")
        raw_rules = payload["rules"]
        if not isinstance(raw_rules, list) or not raw_rules:
            raise SloSpecError("'rules' must be a non-empty list")
        unknown = set(payload) - {"rules", "name", "description"}
        if unknown:
            raise SloSpecError(f"unknown spec fields {sorted(unknown)}")
        rules = [SloRule.from_dict(rule) for rule in raw_rules]
        names = [rule.name for rule in rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SloSpecError(f"duplicate rule names {sorted(duplicates)}")
        return cls(rules=rules)

    @classmethod
    def from_json(cls, path) -> "SloSpec":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SloSpecError(f"could not read SLO spec {path}: {exc}") from exc
        return cls.from_dict(payload)

    def evaluate(self, recorder) -> list[RuleStatus]:
        return [rule.evaluate(recorder) for rule in self.rules]
