"""Process-wide enable switch for the observability layer.

Kept in its own tiny module so the hot-path instruments (counters,
histograms, spans) can check one module-level boolean without importing
the rest of the package.  ``REPRO_OBS=off`` (or ``0``/``false``/``no``)
disables all recording at process start; :func:`set_enabled` toggles it
at runtime, which the benchmarks use to measure instrumentation
overhead inside a single process.

Disabling freezes every instrument at its current value — reads stay
cheap and well-defined, writes become no-ops.
"""

from __future__ import annotations

import os

__all__ = ["enabled", "set_enabled"]

_OFF_VALUES = {"off", "0", "false", "no"}

_enabled = os.environ.get("REPRO_OBS", "on").strip().lower() not in _OFF_VALUES


def enabled() -> bool:
    """True when observability recording is active."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Set the process-wide enable flag; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous
