"""Offline trace analysis: parse span JSONL files and render reports.

This is the read side of :class:`repro.obs.trace.JsonlTraceSink`, used
by ``repro stats <trace.jsonl>``.  Unlike the online histogram path it
has the raw samples, so percentiles here are exact.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

__all__ = [
    "TraceReadError",
    "read_trace",
    "summarize_spans",
    "render_trace_report",
    "render_trace_tree",
]


class TraceReadError(ValueError):
    """The trace file is corrupt; names the offending line."""


def read_trace(path) -> list[dict]:
    """Parse a span JSONL file.

    Same contract as the JSONL store backends: a truncated *final* line
    (the writer was killed mid-append) is tolerated and dropped, but a
    malformed line anywhere earlier is corruption and raises
    :class:`TraceReadError` naming the line — silently skipping it would
    quietly bias every percentile in the report.
    """
    records: list[dict] = []
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == last_content:
                continue  # torn final append, not corruption
            raise TraceReadError(
                f"{path}: line {index + 1} is not valid JSON: {exc}"
            ) from exc
        if not (
            isinstance(record, dict) and "name" in record and "duration_ms" in record
        ):
            raise TraceReadError(
                f"{path}: line {index + 1} is not a span record"
            )
        records.append(record)
    return records


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return sorted_values[index]


def summarize_spans(records: list[dict]) -> list[dict]:
    """Per-span-name aggregates, sorted by total time descending."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for record in records:
        by_name[record["name"]].append(float(record["duration_ms"]))
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        total = sum(durations)
        rows.append(
            {
                "name": name,
                "count": len(durations),
                "total_ms": total,
                "mean_ms": total / len(durations),
                "p50_ms": _percentile(durations, 0.50),
                "p95_ms": _percentile(durations, 0.95),
                "max_ms": durations[-1],
            }
        )
    rows.sort(key=lambda row: row["total_ms"], reverse=True)
    return rows


def _render_tree(record, children, lines, depth):
    indent = "  " * depth
    attrs = record.get("attrs") or {}
    attr_text = (
        " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]" if attrs else ""
    )
    lines.append(
        f"{indent}{record['name']}  {float(record['duration_ms']):.3f} ms"
        f"{attr_text}"
    )
    for child in sorted(children.get(record.get("span"), []), key=lambda r: r.get("ts", 0.0)):
        _render_tree(child, children, lines, depth + 1)


def _span_forest(records: list[dict]):
    """``(roots, children)`` — spans whose parent is absent become roots."""
    children: dict[str, list[dict]] = defaultdict(list)
    roots: list[dict] = []
    span_ids = {record.get("span") for record in records}
    for record in records:
        parent = record.get("parent")
        if parent and parent in span_ids:
            children[parent].append(record)
        else:
            roots.append(record)
    return roots, children


def render_trace_tree(records: list[dict], trace_id: str) -> str:
    """Render exactly one trace's span tree (``repro stats --trace-id``).

    ``trace_id`` may be a unique prefix, the same convenience the result
    store gives record hashes; ambiguous or unknown ids raise
    :class:`ValueError` listing what *is* there.
    """
    matching = [r for r in records if r.get("trace") == trace_id]
    if not matching:
        candidates = sorted({
            str(r.get("trace"))
            for r in records
            if str(r.get("trace", "")).startswith(trace_id)
        })
        if len(candidates) > 1:
            raise ValueError(
                f"trace id prefix {trace_id!r} is ambiguous: "
                f"{', '.join(candidates)}"
            )
        if not candidates:
            known = sorted({str(r.get("trace")) for r in records})
            preview = ", ".join(known[:5]) + ("…" if len(known) > 5 else "")
            raise ValueError(
                f"no trace {trace_id!r} in this file "
                f"({len(known)} traces: {preview})"
            )
        trace_id = candidates[0]
        matching = [r for r in records if r.get("trace") == trace_id]
    roots, children = _span_forest(matching)
    roots.sort(key=lambda r: r.get("ts", 0.0))
    total = sum(float(r["duration_ms"]) for r in roots)
    lines = [f"trace {trace_id}: {len(matching)} spans, {total:.3f} ms in roots"]
    for root in roots:
        _render_tree(root, children, lines, 1)
    return "\n".join(lines) + "\n"


def render_trace_report(records: list[dict], slowest: int = 1) -> str:
    """Human-readable report: per-name table plus the slowest trace tree(s)."""
    if not records:
        return "no spans found\n"
    traces = {record.get("trace") for record in records}
    lines = [f"{len(records)} spans across {len(traces)} traces", ""]

    rows = summarize_spans(records)
    header = f"{'span':<32} {'count':>7} {'total_ms':>10} {'mean_ms':>9} {'p50_ms':>9} {'p95_ms':>9} {'max_ms':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row['name']:<32} {row['count']:>7} {row['total_ms']:>10.2f}"
            f" {row['mean_ms']:>9.3f} {row['p50_ms']:>9.3f} {row['p95_ms']:>9.3f}"
            f" {row['max_ms']:>9.3f}"
        )

    if slowest > 0:
        roots, children = _span_forest(records)
        roots.sort(key=lambda r: float(r["duration_ms"]), reverse=True)
        for root in roots[:slowest]:
            lines.append("")
            lines.append(f"slowest trace {root.get('trace', '?')}:")
            _render_tree(root, children, lines, 1)
    return "\n".join(lines) + "\n"
