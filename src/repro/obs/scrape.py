"""Prometheus text parsing and multi-endpoint federation.

The write side of fleet observability is PR 7's ``GET /metrics``; this is
the read side:

* :func:`parse_prometheus` — parse Prometheus text exposition (format
  0.0.4, the dialect :func:`repro.obs.registry.render_prometheus` emits,
  OpenMetrics exemplar suffixes tolerated) back into the registry's
  *snapshot* dict shape, so everything downstream — merging, diffing,
  time-series recording — reuses the machinery snapshots already have.
  ``render -> parse -> re-render`` is the identity (property-tested).
* :class:`MetricsScraper` — poll N ``/metrics`` URLs, parse each body,
  and join the results into one *federated* snapshot where every series
  carries an ``instance`` label.  Counters then sum across the fleet by
  construction (``merge_snapshot`` adds disjointly-labeled children), so
  N serve workers read as one system.
* :func:`scrape_source` — adapts a scraper into a
  :class:`~repro.obs.timeseries.TimeSeriesRecorder` source, giving the
  recorder (and ``repro top`` on top of it) federated history.

Everything is stdlib-only (``urllib``), matching the serve tier's
dependency posture.
"""

from __future__ import annotations

import re
import urllib.error
import urllib.request

from repro.obs.registry import MetricsRegistry

__all__ = [
    "PrometheusParseError",
    "parse_prometheus",
    "label_snapshot",
    "federate_snapshots",
    "MetricsScraper",
    "scrape_source",
    "normalize_endpoint",
]


class PrometheusParseError(ValueError):
    """The exposition text is not parseable; names the offending line."""


# The label body is matched pair-by-pair (quoted values may contain '}'),
# never greedily — a greedy .* would swallow an exemplar's braces.
_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:\s*[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"\s*,?)*)\})?'
    r"\s+(?P<value>[^\s#]+)"
    r"(?:\s+#\s*\{.*\}.*)?"  # OpenMetrics exemplar suffix: tolerated, dropped
    r"\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace("\\\\", "\0").replace("\\n", "\n").replace('\\"', '"').replace("\0", "\\")


def _parse_value(text: str, line_no: int) -> float:
    try:
        return float(text)  # handles +Inf/-Inf/NaN spellings too
    except ValueError:
        raise PrometheusParseError(
            f"line {line_no}: unparseable sample value {text!r}"
        ) from None


def _parse_labels(body: str | None, line_no: int) -> dict[str, str]:
    if not body:
        return {}
    labels: dict[str, str] = {}
    consumed = 0
    for match in _LABEL_RE.finditer(body):
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        consumed = match.end()
    # Everything between matches must be separators, otherwise the label
    # block was malformed (an unterminated quote would silently drop pairs).
    leftovers = (body[:consumed] if consumed else body)
    stripped = _LABEL_RE.sub("", leftovers).replace(",", "").strip()
    if stripped or (consumed and body[consumed:].strip(", ")):
        raise PrometheusParseError(f"line {line_no}: malformed label block {{{body}}}")
    return labels


def _suffix(name: str, family: str) -> str | None:
    """``_bucket``/``_sum``/``_count`` relative to a histogram family name."""
    if name == family + "_bucket":
        return "bucket"
    if name == family + "_sum":
        return "sum"
    if name == family + "_count":
        return "count"
    return None


class _HistogramAccumulator:
    """Reassembles one histogram child from its cumulative exposition lines."""

    __slots__ = ("cumulative", "sum", "count")

    def __init__(self):
        self.cumulative: list[tuple[float, float]] = []  # (le bound, cum count)
        self.sum = 0.0
        self.count = 0.0

    def finish(self, line_no: int) -> tuple[list[float], dict]:
        bounds = [bound for bound, _ in self.cumulative]
        if bounds != sorted(set(bounds)):
            raise PrometheusParseError(
                f"line {line_no}: histogram le bounds not strictly increasing"
            )
        if not bounds or bounds[-1] != float("inf"):
            raise PrometheusParseError(
                f"line {line_no}: histogram is missing its +Inf bucket"
            )
        counts, previous = [], 0.0
        for _, cumulative in self.cumulative:
            if cumulative < previous:
                raise PrometheusParseError(
                    f"line {line_no}: histogram cumulative counts decrease"
                )
            counts.append(int(cumulative - previous))
            previous = cumulative
        return bounds[:-1], {
            "counts": counts,
            "sum": self.sum,
            "count": int(self.count),
        }


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus 0.0.4 text into the registry snapshot dict shape.

    The result is directly consumable by
    :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`,
    :func:`~repro.obs.registry.diff_snapshots`, and the time-series
    helpers.  Unknown ``TYPE`` kinds (summary, untyped) raise — the fleet
    protocol is exactly what the registry emits.
    """
    families: dict = {}
    helps: dict[str, str] = {}
    kinds: dict[str, str] = {}
    # family -> label-key -> payload (counters/gauges) or accumulator.
    children: dict[str, dict] = {}
    histogram_last_line: dict[str, int] = {}

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            if parts:
                helps[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise PrometheusParseError(f"line {line_no}: malformed TYPE comment")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram"):
                raise PrometheusParseError(
                    f"line {line_no}: unsupported metric kind {kind!r}"
                )
            kinds[name] = kind
            children.setdefault(name, {})
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _SERIES_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"line {line_no}: unparseable sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no)
        value = _parse_value(match.group("value"), line_no)

        family = name if name in kinds else None
        suffix = None
        if family is None:
            for candidate in kinds:
                if kinds[candidate] == "histogram":
                    suffix = _suffix(name, candidate)
                    if suffix is not None:
                        family = candidate
                        break
        if family is None:
            raise PrometheusParseError(
                f"line {line_no}: sample {name!r} has no preceding TYPE declaration"
            )
        if kinds[family] == "histogram":
            if suffix is None:
                raise PrometheusParseError(
                    f"line {line_no}: histogram family {family!r} exposed a bare series"
                )
            histogram_last_line[family] = line_no
            if suffix == "bucket":
                if "le" not in labels:
                    raise PrometheusParseError(
                        f"line {line_no}: _bucket sample without an le label"
                    )
                bound = _parse_value(labels.pop("le"), line_no)
            key = tuple(sorted(labels.items()))
            accumulator = children[family].setdefault(key, _HistogramAccumulator())
            if suffix == "bucket":
                accumulator.cumulative.append((bound, value))
            elif suffix == "sum":
                accumulator.sum = value
            else:
                accumulator.count = value
        else:
            key = tuple(sorted(labels.items()))
            children[family][key] = {"value": value}

    for family, kind in kinds.items():
        family_children = []
        buckets = None
        for key, payload in children.get(family, {}).items():
            if isinstance(payload, _HistogramAccumulator):
                child_buckets, payload = payload.finish(
                    histogram_last_line.get(family, 0)
                )
                if buckets is None:
                    buckets = child_buckets
                elif buckets != child_buckets:
                    raise PrometheusParseError(
                        f"histogram {family!r} children disagree on bucket bounds"
                    )
            family_children.append([list(map(list, key)), payload])
        families[family] = {
            "kind": kind,
            "help": helps.get(family, ""),
            "buckets": buckets,
            "children": family_children,
        }
    return {"families": families}


# ------------------------------------------------------------------ federation
def label_snapshot(snapshot: dict, **extra_labels) -> dict:
    """A copy of ``snapshot`` with ``extra_labels`` joined onto every child.

    The federation primitive: label each worker's snapshot with its
    ``instance`` before merging, and per-worker series stay distinct while
    fleet totals come from summing over the label.
    """
    extra = sorted((k, str(v)) for k, v in extra_labels.items())
    families = {}
    for name, payload in snapshot.get("families", {}).items():
        children = []
        for raw_key, child in payload.get("children", []):
            base = [list(pair) for pair in raw_key if pair[0] not in extra_labels]
            key = sorted(base + [list(pair) for pair in extra])
            children.append([key, child])
        families[name] = {**payload, "children": children}
    return {"families": families}


def federate_snapshots(labeled_snapshots) -> MetricsRegistry:
    """Merge labeled snapshots into one fresh registry (fleet totals sum)."""
    registry = MetricsRegistry()
    for snapshot in labeled_snapshots:
        registry.merge_snapshot(snapshot)
    return registry


def normalize_endpoint(endpoint: str) -> tuple[str, str]:
    """``(instance, url)`` from an endpoint spec.

    Accepts full URLs (``http://host:port/metrics``), bare authorities
    (``host:port``), or bare ports (``:8151`` — localhost implied); the
    instance name is the authority, the join key federation labels with.
    """
    spec = endpoint.strip()
    if spec.startswith(":") and spec[1:].isdigit():
        spec = f"127.0.0.1{spec}"
    if "//" not in spec:
        spec = "http://" + spec
    scheme, _, rest = spec.partition("//")
    authority, _, path = rest.partition("/")
    if not authority:
        raise ValueError(f"invalid metrics endpoint {endpoint!r}")
    if not path:
        path = "metrics"
    return authority, f"{scheme}//{authority}/{path}"


class MetricsScraper:
    """Polls N ``/metrics`` endpoints and federates them by ``instance``.

    A down instance never fails the scrape — it is reported with
    ``up: false`` and simply contributes nothing to the federated
    snapshot, which is exactly how a fleet dashboard must behave while a
    worker restarts.
    """

    def __init__(self, endpoints, timeout: float = 2.0) -> None:
        if not endpoints:
            raise ValueError("MetricsScraper needs at least one endpoint")
        self.targets = [normalize_endpoint(endpoint) for endpoint in endpoints]
        seen = set()
        for instance, _ in self.targets:
            if instance in seen:
                raise ValueError(f"duplicate metrics endpoint {instance!r}")
            seen.add(instance)
        self.timeout = float(timeout)

    def fetch(self, url: str) -> str:
        with urllib.request.urlopen(url, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def scrape(self) -> dict:
        """One polling round.

        Returns ``{"instances": {instance: {"up", "error", "snapshot"}},
        "snapshot": federated}`` where ``federated`` unions every live
        instance's series under its ``instance`` label.
        """
        instances: dict[str, dict] = {}
        labeled = []
        for instance, url in self.targets:
            try:
                snapshot = parse_prometheus(self.fetch(url))
            except (OSError, urllib.error.URLError, PrometheusParseError) as exc:
                instances[instance] = {"up": False, "error": str(exc), "snapshot": None}
                continue
            instances[instance] = {"up": True, "error": None, "snapshot": snapshot}
            labeled.append(label_snapshot(snapshot, instance=instance))
        return {
            "instances": instances,
            "snapshot": federate_snapshots(labeled).snapshot(),
        }


def scrape_source(endpoints, timeout: float = 2.0):
    """A :class:`~repro.obs.timeseries.TimeSeriesRecorder` source that
    samples the federated view of ``endpoints`` on every tick."""
    scraper = MetricsScraper(endpoints, timeout=timeout)
    return lambda: scraper.scrape()["snapshot"]
