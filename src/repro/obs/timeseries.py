"""Fixed-memory time-series recording over metric snapshots.

:class:`TimeSeriesRecorder` turns the point-in-time world of
:class:`~repro.obs.registry.MetricsRegistry` into *history*: a background
thread samples a snapshot source into a ring buffer (``capacity`` samples,
oldest evicted — memory is fixed no matter how long the process lives) and
windowed queries derive the operational numbers the raw registry cannot
answer:

* **rates** — queries/sec, errors/sec from counter deltas between the
  window's edge samples (:meth:`~TimeSeriesRecorder.counter_rate`);
* **sliding-window quantiles** — p50/p95/p99 over *just* the window, by
  diffing cumulative histogram bucket counts between the edge samples and
  interpolating inside the resulting per-window distribution
  (:meth:`~TimeSeriesRecorder.quantile`);
* **sparkline series** — per-interval values for dashboards
  (:meth:`~TimeSeriesRecorder.series`).

The snapshot *source* is any zero-argument callable returning the
``registry.snapshot()`` dict shape; :func:`registry_source` adapts one or
more local registries, and :func:`repro.obs.scrape.scrape_source` adapts a
fleet of remote ``/metrics`` endpoints — the recorder itself does not care
whether history is single-process or federated.

An :class:`~repro.obs.slo.SloSpec` attached via :meth:`attach_slo` is
re-evaluated after every sample; rule transitions invoke ``on_alert`` (the
serve layer uses this for ``--log-json`` alert lines) and the latest
statuses back ``GET /healthz`` / ``GET /alerts``.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from typing import Callable, Iterable, Mapping

__all__ = [
    "TimeSeriesRecorder",
    "registry_source",
    "merge_family_maps",
    "iter_children",
    "counter_total",
    "gauge_value",
    "histogram_state",
    "quantile_from_counts",
]


# ----------------------------------------------------------- snapshot helpers
def merge_family_maps(snapshots: Iterable[dict]) -> dict:
    """Union several snapshots into one; first snapshot wins on family name.

    Mirrors the first-wins convention of
    :func:`repro.obs.registry.render_prometheus` for the service-registry +
    process-global pair (family names are disjoint by convention).
    """
    families: dict = {}
    for snapshot in snapshots:
        for name, payload in snapshot.get("families", {}).items():
            families.setdefault(name, payload)
    return {"families": families}


def registry_source(registries) -> Callable[[], dict]:
    """A recorder source sampling one or more local registries."""
    registries = list(registries)
    return lambda: merge_family_maps(r.snapshot() for r in registries)


def _matches(labels: dict, selector: Mapping[str, str]) -> bool:
    """True when every selector pair matches (values are regex-fullmatched).

    Plain strings match themselves, so ``status="500"`` selects exactly
    that series while ``status="5.."`` selects the whole class.
    """
    for key, pattern in selector.items():
        value = labels.get(key)
        if value is None or re.fullmatch(str(pattern), value) is None:
            return False
    return True


def iter_children(snapshot: dict, name: str, selector: Mapping[str, str] | None = None):
    """Yield ``(labels_dict, payload)`` for every matching child of a family."""
    family = snapshot.get("families", {}).get(name)
    if family is None:
        return
    selector = selector or {}
    for raw_key, payload in family.get("children", []):
        labels = {k: v for k, v in raw_key}
        if _matches(labels, selector):
            yield labels, payload


def counter_total(snapshot: dict, name: str, selector=None) -> float | None:
    """Sum of matching counter (or gauge) children; None when absent."""
    total, found = 0.0, False
    for _, payload in iter_children(snapshot, name, selector):
        total += float(payload.get("value", 0.0))
        found = True
    return total if found else None


def gauge_value(snapshot: dict, name: str, selector=None) -> float | None:
    """Sum of matching gauge children (fleet gauges add; None when absent)."""
    return counter_total(snapshot, name, selector)


def histogram_state(snapshot: dict, name: str, selector=None):
    """Summed ``(buckets, counts, count, sum)`` over matching children.

    Returns ``None`` when the family is absent or no child matches; raises
    on mismatched bucket layouts (summing those would be meaningless).
    """
    family = snapshot.get("families", {}).get(name)
    if family is None:
        return None
    buckets = family.get("buckets")
    counts = None
    total_count, total_sum = 0, 0.0
    for _, payload in iter_children(snapshot, name, selector):
        child_counts = payload.get("counts")
        if child_counts is None:
            return None  # not a histogram family
        if counts is None:
            counts = [0] * len(child_counts)
        elif len(counts) != len(child_counts):
            raise ValueError(f"histogram {name!r} bucket layout mismatch")
        for index, value in enumerate(child_counts):
            counts[index] += value
        total_count += payload.get("count", 0)
        total_sum += payload.get("sum", 0.0)
    if counts is None:
        return None
    return tuple(buckets or []), counts, total_count, total_sum


def quantile_from_counts(buckets, counts, q: float) -> float:
    """Interpolated q-quantile from per-bucket counts (same math as
    :meth:`repro.obs.registry.Histogram.quantile`, reusable on diffs)."""
    total = sum(counts)
    if total <= 0:
        return float("nan")
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count > 0:
            if index >= len(buckets):
                return buckets[-1] if buckets else float("nan")
            lower = 0.0 if index == 0 else buckets[index - 1]
            upper = buckets[index]
            fraction = (rank - previous) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return buckets[-1] if buckets else float("nan")


# ----------------------------------------------------------------- recorder
class TimeSeriesRecorder:
    """Ring-buffer recorder answering windowed queries over snapshots.

    Parameters
    ----------
    source:
        Zero-argument callable returning a snapshot dict (see
        :func:`registry_source` / :func:`repro.obs.scrape.scrape_source`).
    interval_seconds:
        Background sampling period (and the resolution of
        :meth:`series`).
    capacity:
        Ring size in samples — the *only* memory bound needed; a 600 x 1s
        ring holds ten minutes of history forever.
    clock:
        Injectable monotonic clock (tests drive synthetic time).
    """

    def __init__(
        self,
        source: Callable[[], dict],
        interval_seconds: float = 1.0,
        capacity: int = 600,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (windows need two edges)")
        self._source = source
        self.interval_seconds = float(interval_seconds)
        self.capacity = int(capacity)
        self._clock = clock
        self._samples: deque[tuple[float, dict]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._slo = None
        self._statuses: list = []
        self._firing: dict[str, bool] = {}
        self.on_alert: Callable[[object, bool], None] | None = None
        self.n_sample_errors = 0

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "TimeSeriesRecorder":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.sample()

    # ------------------------------------------------------------ sampling
    def sample(self) -> None:
        """Take one sample now (the thread's body; tests call it directly).

        A failing source (an endpoint mid-restart) is counted, not raised —
        the recorder must survive exactly the degraded conditions it
        exists to report.
        """
        try:
            snapshot = self._source()
        except Exception:
            self.n_sample_errors += 1
            return
        with self._lock:
            self._samples.append((self._clock(), snapshot))
        if self._slo is not None:
            self._evaluate_slo()

    def attach_slo(self, spec) -> None:
        """Evaluate ``spec`` after every sample (see :mod:`repro.obs.slo`)."""
        self._slo = spec

    def _evaluate_slo(self) -> None:
        statuses = self._slo.evaluate(self)
        with self._lock:
            self._statuses = statuses
        for status in statuses:
            was = self._firing.get(status.name, False)
            if status.firing != was:
                self._firing[status.name] = status.firing
                callback = self.on_alert
                if callback is not None:
                    try:
                        callback(status, status.firing)
                    except Exception:  # pragma: no cover - callbacks must not kill sampling
                        pass

    def statuses(self) -> list:
        """The most recent SLO evaluation (empty before the first sample)."""
        with self._lock:
            return list(self._statuses)

    def firing(self) -> list:
        return [status for status in self.statuses() if status.firing]

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def latest(self) -> tuple[float, dict] | None:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def window(self, window_seconds: float) -> list[tuple[float, dict]]:
        """Samples no older than ``window_seconds`` before the newest one."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return []
        horizon = samples[-1][0] - float(window_seconds)
        return [sample for sample in samples if sample[0] >= horizon]

    def _edges(self, window_seconds: float):
        """The (earliest, latest) samples of a window, or None.

        When the window reaches past recorded history the earliest stored
        sample is used — a young recorder reports over the history it has
        rather than nothing.
        """
        samples = self.window(window_seconds)
        if len(samples) < 2:
            return None
        return samples[0], samples[-1]

    def counter_delta(self, name: str, window_seconds: float = 60.0,
                      **selector) -> float | None:
        """Increase of a counter total across the window; None without data.

        A negative delta (an instance restarted and its counter reset) is
        clamped to the late total — the best monotone estimate available.
        """
        edges = self._edges(window_seconds)
        if edges is None:
            return None
        (_, early), (_, late) = edges
        late_total = counter_total(late, name, selector)
        if late_total is None:
            return None
        early_total = counter_total(early, name, selector) or 0.0
        delta = late_total - early_total
        return late_total if delta < 0 else delta

    def counter_rate(self, name: str, window_seconds: float = 60.0,
                     **selector) -> float | None:
        """Per-second rate of a counter over the window (qps and friends)."""
        edges = self._edges(window_seconds)
        if edges is None:
            return None
        (early_ts, _), (late_ts, _) = edges
        elapsed = late_ts - early_ts
        if elapsed <= 0:
            return None
        delta = self.counter_delta(name, window_seconds, **selector)
        return None if delta is None else delta / elapsed

    def gauge(self, name: str, **selector) -> float | None:
        """Latest value of a gauge total (summed over matching children)."""
        latest = self.latest()
        if latest is None:
            return None
        return gauge_value(latest[1], name, selector)

    def quantile(self, name: str, q: float, window_seconds: float = 60.0,
                 **selector) -> float | None:
        """Sliding-window quantile from histogram bucket-count diffs.

        Subtracting the window's early cumulative bucket counts from the
        late ones leaves exactly the observations made *inside* the
        window; the quantile interpolates in that distribution, so a
        latency spike ages out of the p99 once the window slides past it
        (the all-time histogram would remember it forever).
        """
        edges = self._edges(window_seconds)
        if edges is None:
            return None
        (_, early), (_, late) = edges
        late_state = histogram_state(late, name, selector)
        if late_state is None:
            return None
        buckets, late_counts, late_count, _ = late_state
        early_state = histogram_state(early, name, selector)
        if early_state is None:
            counts = late_counts
        else:
            _, early_counts, early_count, _ = early_state
            if len(early_counts) != len(late_counts) or late_count < early_count:
                counts = late_counts  # restart or relabel: fall back to all-time
            else:
                counts = [a - b for a, b in zip(late_counts, early_counts)]
        if sum(counts) <= 0:
            return None
        return quantile_from_counts(buckets, counts, q)

    def series(self, name: str, window_seconds: float = 60.0, kind: str = "counter",
               **selector) -> list[tuple[float, float]]:
        """Per-sample series for sparklines.

        ``kind="counter"`` yields per-interval *rates* (one point per
        consecutive sample pair); ``kind="gauge"`` yields raw values.
        """
        samples = self.window(window_seconds)
        points: list[tuple[float, float]] = []
        if kind == "gauge":
            for ts, snapshot in samples:
                value = gauge_value(snapshot, name, selector)
                if value is not None:
                    points.append((ts, value))
            return points
        previous: tuple[float, float] | None = None
        for ts, snapshot in samples:
            total = counter_total(snapshot, name, selector)
            if total is None:
                continue
            if previous is not None:
                prev_ts, prev_total = previous
                elapsed = ts - prev_ts
                if elapsed > 0:
                    delta = total - prev_total
                    points.append((ts, (total if delta < 0 else delta) / elapsed))
            previous = (ts, total)
        return points
