"""`repro top` — a live terminal dashboard over one or more serve workers.

:class:`TopClient` composes the fleet-observability pieces end to end:
a :class:`~repro.obs.scrape.MetricsScraper` polls every ``/metrics``
endpoint, the federated snapshots feed a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` ring, and
:meth:`TopClient.summary` reduces that history to the numbers an
operator watches — fleet qps, windowed p50/p99, error ratio, queue
depth, cache hit ratio — plus the same per-instance totals, so
"federated == sum of parts" is checkable from the output itself
(CI does exactly that via ``repro top --once --json``).

:func:`render` turns a summary into the interactive screen: an instance
table over unicode sparklines (:func:`sparkline`) of qps and p99 drawn
from the recorder's per-interval series.  Everything here is pure
formatting over recorder queries; nothing talks to the network except
through the scraper.
"""

from __future__ import annotations

import math

from repro.obs.timeseries import (
    TimeSeriesRecorder,
    counter_total,
    gauge_value,
    iter_children,
)
from repro.obs.scrape import MetricsScraper

__all__ = ["TopClient", "sparkline", "render"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"

# The metric vocabulary the dashboard reads (all emitted by repro.serve).
QUERIES = "repro_serve_queries_total"
HTTP_REQUESTS = "repro_http_requests_total"
HTTP_SECONDS = "repro_http_request_seconds"
QUEUE_DEPTH = "repro_batcher_queue_depth"
CACHE_HITS = "repro_serve_cache_hits_total"
CACHE_MISSES = "repro_serve_cache_misses_total"
# Quality families (emitted by repro.obs.quality through the sessions).
PREQUENTIAL = "repro_quality_prequential_total"
QUALITY_FLIPS = "repro_quality_flips_total"
QUALITY_DRIFT = "repro_quality_drift"


def sparkline(values, width: int = 30) -> str:
    """Unicode block sparkline of the last ``width`` values ('' when empty)."""
    values = [float(v) for v in values if v == v][-width:]  # drop NaNs
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_CHARS[0] * len(values)
    steps = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((value - low) / span * steps))] for value in values
    )


def _ratio(numerator, denominator) -> float | None:
    if numerator is None or denominator is None or denominator <= 0:
        return None
    return numerator / denominator


def _max_gauge(snapshot: dict, name: str) -> float | None:
    """Max over a gauge family's children (drift: worst session wins —
    the instance-summing federation semantics would add unrelated
    sessions' drifts together)."""
    values = [
        float(payload.get("value", 0.0))
        for _, payload in iter_children(snapshot, name)
    ]
    return max(values) if values else None


def _accuracy_series(recorder, window_seconds: float) -> list[tuple[float, float]]:
    """Per-interval prequential accuracy (delta correct / delta scored)."""
    points: list[tuple[float, float]] = []
    previous: tuple[float, float, float] | None = None
    for ts, snapshot in recorder.window(window_seconds):
        correct = counter_total(snapshot, PREQUENTIAL, {"outcome": "correct"})
        wrong = counter_total(snapshot, PREQUENTIAL, {"outcome": "wrong"})
        if correct is None and wrong is None:
            continue
        correct = correct or 0.0
        scored = correct + (wrong or 0.0)
        if previous is not None:
            _, prev_correct, prev_scored = previous
            delta_scored = scored - prev_scored
            delta_correct = correct - prev_correct
            if delta_scored > 0 and delta_correct >= 0:
                points.append((ts, delta_correct / delta_scored))
        previous = (ts, correct, scored)
    return points


def _drift_series(recorder, window_seconds: float) -> list[tuple[float, float]]:
    """Worst-session drift per sample."""
    points: list[tuple[float, float]] = []
    for ts, snapshot in recorder.window(window_seconds):
        value = _max_gauge(snapshot, QUALITY_DRIFT)
        if value is not None:
            points.append((ts, value))
    return points


class TopClient:
    """Scrape N endpoints into a recorder and summarize the fleet."""

    def __init__(
        self,
        endpoints,
        interval_seconds: float = 1.0,
        window_seconds: float = 60.0,
        timeout: float = 2.0,
        capacity: int = 600,
        clock=None,
    ) -> None:
        self.scraper = MetricsScraper(endpoints, timeout=timeout)
        self.window_seconds = float(window_seconds)
        self.last_scrape: dict | None = None

        def source() -> dict:
            result = self.scraper.scrape()
            self.last_scrape = result
            return result["snapshot"]

        kwargs = {} if clock is None else {"clock": clock}
        self.recorder = TimeSeriesRecorder(
            source, interval_seconds=interval_seconds, capacity=capacity, **kwargs
        )

    def poll(self) -> None:
        """One scrape-and-record round (the CLI loop's body)."""
        self.recorder.sample()

    # ------------------------------------------------------------- summary
    def _instance_row(self, state: dict) -> dict:
        snapshot = state.get("snapshot")
        row = {"up": state["up"], "error": state["error"]}
        if snapshot is None:
            row.update(queries_total=None, http_requests_total=None, gauges={})
            return row
        row["queries_total"] = counter_total(snapshot, QUERIES)
        row["http_requests_total"] = counter_total(snapshot, HTTP_REQUESTS)
        # Every gauge family, summed per instance: counters and histograms
        # reach the JSON output through the recorder series, but gauges
        # (queue depth, the quality drift gauge) were invisible per
        # instance before this.
        row["gauges"] = {
            name: counter_total(snapshot, name)
            for name, family in sorted(snapshot.get("families", {}).items())
            if family.get("kind") == "gauge"
        }
        return row

    def summary(self) -> dict:
        """The fleet state as one JSON-safe dict (``repro top --once --json``).

        ``fleet.queries_total`` comes from the *federated* snapshot while
        each ``instances[*].queries_total`` comes from that worker's own
        scrape — by construction of the instance-label merge the former is
        the sum of the latter, and the CI smoke test asserts exactly that.
        """
        window = self.window_seconds
        recorder = self.recorder
        scrape = self.last_scrape or {"instances": {}}
        instances = {
            name: self._instance_row(state)
            for name, state in sorted(scrape.get("instances", {}).items())
        }
        latest = recorder.latest()
        federated = latest[1] if latest is not None else {"families": {}}
        cache_hits = counter_total(federated, CACHE_HITS)
        cache_misses = counter_total(federated, CACHE_MISSES)
        cache_lookups = (cache_hits or 0.0) + (cache_misses or 0.0)
        fleet = {
            "queries_total": counter_total(federated, QUERIES),
            "http_requests_total": counter_total(federated, HTTP_REQUESTS),
            "qps": recorder.counter_rate(QUERIES, window),
            "http_qps": recorder.counter_rate(HTTP_REQUESTS, window),
            "error_rate": recorder.counter_rate(HTTP_REQUESTS, window, status="5.."),
            "p50_seconds": recorder.quantile(HTTP_SECONDS, 0.50, window),
            "p99_seconds": recorder.quantile(HTTP_SECONDS, 0.99, window),
            "queue_depth": gauge_value(federated, QUEUE_DEPTH),
            "cache_hit_ratio": _ratio(cache_hits, cache_lookups),
        }
        # Fleet quality: prequential counters sum across instances (the
        # accuracy is therefore example-weighted); the drift gauge takes
        # the worst session anywhere in the fleet.
        correct = counter_total(federated, PREQUENTIAL, {"outcome": "correct"})
        wrong = counter_total(federated, PREQUENTIAL, {"outcome": "wrong"})
        scored = (correct or 0.0) + (wrong or 0.0)
        window_correct = recorder.counter_delta(
            PREQUENTIAL, window, outcome="correct"
        )
        window_wrong = recorder.counter_delta(PREQUENTIAL, window, outcome="wrong")
        window_scored = (window_correct or 0.0) + (window_wrong or 0.0)
        quality = {
            "scored": scored,
            "accuracy": _ratio(correct, scored),
            "window_accuracy": _ratio(window_correct, window_scored),
            "drift_max": _max_gauge(federated, QUALITY_DRIFT),
            "flips_total": counter_total(federated, QUALITY_FLIPS),
        }
        return {
            "window_seconds": window,
            "samples": len(recorder),
            "instances_up": sum(1 for row in instances.values() if row["up"]),
            "instances": instances,
            "fleet": fleet,
            "quality": quality,
        }


# ------------------------------------------------------------------ rendering
def _fmt(value, unit: str = "", precision: int = 1) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.{precision}f}{unit}"


def render(client: TopClient, width: int = 30) -> str:
    """The full-screen dashboard body for one refresh."""
    summary = client.summary()
    fleet = summary["fleet"]
    quality = summary["quality"]
    recorder = client.recorder
    window = summary["window_seconds"]
    lines = [
        f"repro top — {summary['instances_up']}/{len(summary['instances'])} "
        f"instances up, {summary['samples']} samples, {window:g}s window",
        "",
        f"  qps        {_fmt(fleet['qps'])}"
        f"   http {_fmt(fleet['http_qps'])}/s"
        f"   errors {_fmt(fleet['error_rate'], '/s', 2)}",
        f"  latency    p50 {_fmt(_ms(fleet['p50_seconds']), 'ms')}"
        f"   p99 {_fmt(_ms(fleet['p99_seconds']), 'ms')}",
        f"  queue      {_fmt(fleet['queue_depth'], '', 0)}"
        f"   cache hit {_fmt(_pct(fleet['cache_hit_ratio']), '%')}",
        f"  quality    acc {_fmt(_pct(quality['accuracy']), '%')}"
        f" ({_fmt(quality['scored'], '', 0)} scored)"
        f"   drift {_fmt(quality['drift_max'], '', 3)}"
        f"   flips {_fmt(quality['flips_total'], '', 0)}",
        "",
    ]
    qps_series = [v for _, v in recorder.series(QUERIES, window)]
    depth_series = [v for _, v in recorder.series(QUEUE_DEPTH, window, kind="gauge")]
    lines.append(f"  qps   {sparkline(qps_series, width)}")
    lines.append(f"  queue {sparkline(depth_series, width)}")
    accuracy_series = [v for _, v in _accuracy_series(recorder, window)]
    drift_series = [v for _, v in _drift_series(recorder, window)]
    if accuracy_series or drift_series:
        lines.append(f"  acc   {sparkline(accuracy_series, width)}")
        lines.append(f"  drift {sparkline(drift_series, width)}")
    lines.append("")
    lines.append(f"  {'instance':<24} {'up':<5} {'queries':>12} {'http':>12}")
    for name, row in summary["instances"].items():
        status = "up" if row["up"] else "DOWN"
        lines.append(
            f"  {name:<24} {status:<5}"
            f" {_fmt(row['queries_total'], '', 0):>12}"
            f" {_fmt(row['http_requests_total'], '', 0):>12}"
        )
        if row["error"]:
            lines.append(f"    ! {row['error']}")
    return "\n".join(lines) + "\n"


def _ms(seconds) -> float | None:
    return None if seconds is None else seconds * 1000.0


def _pct(ratio) -> float | None:
    return None if ratio is None else ratio * 100.0
