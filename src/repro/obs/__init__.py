"""`repro.obs` — unified metrics, tracing, and profiling.

One dependency-free substrate for every measurement in the repo:

* **Metrics** — :func:`metrics` returns the process-global
  :class:`MetricsRegistry` (thread-safe counters, gauges, fixed-bucket
  histograms).  Injectable for tests via :func:`use_registry` /
  :func:`set_metrics_registry`; serialized for scraping with
  :func:`render_prometheus` and shipped across processes with
  ``registry.snapshot()`` / :func:`diff_snapshots` /
  ``registry.merge_snapshot()``.
* **Tracing** — :func:`span` context managers forming per-request
  trees; :func:`capture_context` + :func:`emit_span` carry parentage
  across thread hops (MicroBatcher queue -> worker).  Records go to the
  sink installed by :func:`configure_tracing` (or ``REPRO_TRACE=<path>``
  at import), typically a :class:`JsonlTraceSink` read back by
  ``repro stats``.
* **Switch** — ``REPRO_OBS=off`` (env) or :func:`set_enabled` turns all
  recording into no-ops; instrumentation never changes numerics either
  way.

Fleet layer (PR 8), built on those primitives:

* **History** — :class:`TimeSeriesRecorder` samples snapshots into a
  fixed-memory ring and answers windowed queries (rates, sliding
  p50/p95/p99); :func:`registry_source` feeds it locally.
* **Federation** — :func:`parse_prometheus` reads exposition text back
  into snapshot shape; :class:`MetricsScraper` / :func:`scrape_source`
  poll N ``/metrics`` endpoints into one ``instance``-labeled view.
* **SLOs** — :class:`SloSpec` rules (JSON) evaluated by the recorder;
  firing rules degrade ``GET /healthz`` and surface on ``GET /alerts``.
* **Sampling** — ``REPRO_TRACE_SAMPLE`` / :func:`configure_sampling`
  head-sample traces (slow spans always kept); sampled observations
  leave exemplar trace ids on histogram buckets.

Metric naming scheme: ``repro_<subsystem>_<metric>[_<unit>]`` with
labels for dimensions, e.g. ``repro_engine_solve_seconds{propagator}``,
``repro_serve_queries_total{graph}``, ``repro_push_frontier_size``.
Counters end in ``_total``; timings are histograms in seconds.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs._flags import enabled, set_enabled
from repro.obs.registry import (
    ITERATION_BUCKETS,
    LATENCY_BUCKETS,
    RESIDUAL_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    render_prometheus,
)
from repro.obs.report import (
    TraceReadError,
    read_trace,
    render_trace_report,
    render_trace_tree,
    summarize_spans,
)
from repro.obs.quality import (
    ACCURACY_BUCKETS,
    QualityMonitor,
    empirical_compatibility,
    normalized_drift,
)
from repro.obs.scrape import (
    MetricsScraper,
    PrometheusParseError,
    federate_snapshots,
    label_snapshot,
    parse_prometheus,
    scrape_source,
)
from repro.obs.slo import RuleStatus, SloRule, SloSpec, SloSpecError
from repro.obs.timeseries import TimeSeriesRecorder, registry_source
from repro.obs.trace import (
    JsonlTraceSink,
    Span,
    SpanContext,
    capture_context,
    configure_sampling,
    configure_tracing,
    current_context,
    emit_span,
    new_trace_id,
    sampling,
    span,
    trace_sampled,
    tracing_active,
)

__all__ = [
    "enabled",
    "set_enabled",
    "metrics",
    "set_metrics_registry",
    "use_registry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "diff_snapshots",
    "render_prometheus",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "ITERATION_BUCKETS",
    "RESIDUAL_BUCKETS",
    "span",
    "Span",
    "SpanContext",
    "emit_span",
    "capture_context",
    "current_context",
    "configure_tracing",
    "tracing_active",
    "new_trace_id",
    "JsonlTraceSink",
    "read_trace",
    "render_trace_report",
    "render_trace_tree",
    "TraceReadError",
    "summarize_spans",
    "TimeSeriesRecorder",
    "registry_source",
    "parse_prometheus",
    "PrometheusParseError",
    "label_snapshot",
    "federate_snapshots",
    "MetricsScraper",
    "scrape_source",
    "SloSpec",
    "SloRule",
    "RuleStatus",
    "SloSpecError",
    "QualityMonitor",
    "ACCURACY_BUCKETS",
    "empirical_compatibility",
    "normalized_drift",
    "configure_sampling",
    "sampling",
    "trace_sampled",
]

_global_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry (default home for all instrumentation)."""
    return _global_registry


def set_metrics_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily swap in a (fresh by default) global registry.

    The test suite's isolation primitive: instrumented code records into
    the swapped-in registry, and the previous one is restored on exit.
    """
    swapped = registry if registry is not None else MetricsRegistry()
    previous = set_metrics_registry(swapped)
    try:
        yield swapped
    finally:
        set_metrics_registry(previous)


# REPRO_TRACE=<path> wires a JSONL sink at import so any entry point
# (CLI, benchmarks, tests) can opt into tracing without code changes.
_trace_path = os.environ.get("REPRO_TRACE", "").strip()
if _trace_path:
    try:
        configure_tracing(JsonlTraceSink(_trace_path))
    except OSError:  # unwritable path: tracing stays off
        pass
