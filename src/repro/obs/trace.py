"""Lightweight trace spans with cross-thread parenting.

A span is a named, timed region carrying a ``(trace_id, span_id)``
context.  Contexts propagate through a :mod:`contextvars` variable, so
nested ``with obs.span(...)`` blocks form a tree without any explicit
plumbing.  Two extra entry points cover the places where work moves
between threads:

* :func:`capture_context` — grab the caller's current context (e.g. in
  ``MicroBatcher.submit``, on the HTTP handler thread);
* :func:`emit_span` — record an already-measured region against an
  explicit parent context (e.g. in the batcher's flush loop, on the
  worker thread), so the span tree survives the queue hop.

Spans only record when a sink is configured (``obs.configure_tracing``
or ``REPRO_TRACE=<path>``) *and* observability is enabled; otherwise
:func:`span` returns a shared no-op object and costs one attribute
check.  Records are flat dicts; :class:`JsonlTraceSink` appends them as
one JSON object per line for `repro stats`.

**Head-based sampling** keeps ``--trace`` viable at production qps:
``REPRO_TRACE_SAMPLE=<p>`` (or :func:`configure_sampling`) makes the
keep/drop decision once per trace, at the root span, from a hash of the
trace id — deterministic, so every process in a fleet agrees on the same
ids and sampled trees stay complete.  Child spans inherit the decision
through :class:`SpanContext`.  The escape hatch is *always-keep-slow*:
any span whose duration exceeds ``REPRO_TRACE_SLOW_MS`` (default 100) is
written even inside a dropped trace, tagged ``sampled: false``, so tail
latency outliers are never invisible.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar
from typing import NamedTuple

from repro.obs._flags import enabled

__all__ = [
    "SpanContext",
    "Span",
    "span",
    "emit_span",
    "capture_context",
    "current_context",
    "configure_tracing",
    "tracing_active",
    "configure_sampling",
    "sampling",
    "trace_sampled",
    "new_trace_id",
    "JsonlTraceSink",
]


class SpanContext(NamedTuple):
    trace_id: str
    span_id: str
    # Head-based sampling decision, made at the root span and inherited by
    # every child (and across the batcher's thread hop, which ships the
    # whole context).
    sampled: bool = True


_CURRENT: ContextVar[SpanContext | None] = ContextVar("repro_obs_span", default=None)


def new_trace_id() -> str:
    """16-hex-char random id (does not touch any seeded RNG stream)."""
    return os.urandom(8).hex()


def current_context() -> SpanContext | None:
    return _CURRENT.get()


# Alias emphasising intent at submit sites: "capture my context so the
# worker thread can parent its spans to me".
capture_context = current_context


class _Tracer:
    def __init__(self):
        self._sink = None

    def configure(self, sink):
        previous = self._sink
        self._sink = sink
        return previous

    @property
    def active(self) -> bool:
        return self._sink is not None and enabled()

    def emit(self, record: dict) -> None:
        sink = self._sink
        if sink is not None:
            sink(record)


_TRACER = _Tracer()


def configure_tracing(sink):
    """Install a span sink (a callable taking a record dict); returns the old one.

    Pass ``None`` to disable tracing.
    """
    return _TRACER.configure(sink)


def tracing_active() -> bool:
    return _TRACER.active


# ------------------------------------------------------------------- sampling
def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


_sample_probability = min(max(_env_float("REPRO_TRACE_SAMPLE", 1.0), 0.0), 1.0)
_slow_threshold_ms = _env_float("REPRO_TRACE_SLOW_MS", 100.0)


def configure_sampling(
    probability: float | None = None, slow_ms: float | None = None
) -> tuple[float, float]:
    """Set the head-sampling probability and/or the always-keep-slow
    threshold (milliseconds); returns the previous ``(probability,
    slow_ms)`` pair.  ``probability=1`` keeps every trace (the default),
    ``0`` keeps none (slow spans still surface)."""
    global _sample_probability, _slow_threshold_ms
    previous = (_sample_probability, _slow_threshold_ms)
    if probability is not None:
        _sample_probability = min(max(float(probability), 0.0), 1.0)
    if slow_ms is not None:
        _slow_threshold_ms = float(slow_ms)
    return previous


def sampling() -> tuple[float, float]:
    """The active ``(probability, slow_ms)`` sampling configuration."""
    return (_sample_probability, _slow_threshold_ms)


def trace_sampled(trace_id: str) -> bool:
    """The head-sampling decision for a trace id.

    Deterministic — a hash of the id, not an RNG draw — so concurrent
    processes keep or drop the *same* traces (federated trees stay whole)
    and nothing here perturbs the repo's seeded RNG streams.
    """
    if _sample_probability >= 1.0:
        return True
    if _sample_probability <= 0.0:
        return False
    try:
        fraction = int(trace_id[:8], 16) / float(1 << 32)
    except ValueError:
        fraction = 0.0  # unparseable ids (caller-supplied) are always kept
    return fraction < _sample_probability


class JsonlTraceSink:
    """Appends span records to a JSONL file, one object per line."""

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def __call__(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


def _clean_attrs(attrs: dict) -> dict:
    return {
        key: (value if isinstance(value, (str, int, float, bool)) or value is None else str(value))
        for key, value in attrs.items()
    }


class Span:
    """Context manager recording one timed region (see module docstring)."""

    __slots__ = ("name", "attrs", "context", "parent_id", "_explicit_parent",
                 "_trace_id", "_token", "_wall_start", "_perf_start")

    def __init__(self, name: str, parent: SpanContext | None, trace_id: str | None, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.context: SpanContext | None = None
        self.parent_id: str | None = None
        self._explicit_parent = parent
        self._trace_id = trace_id

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self):
        parent = self._explicit_parent if self._explicit_parent is not None else _CURRENT.get()
        if parent is not None:
            trace_id = parent.trace_id
            self.parent_id = parent.span_id
            sampled = getattr(parent, "sampled", True)
        else:
            trace_id = self._trace_id or new_trace_id()
            sampled = trace_sampled(trace_id)
        self.context = SpanContext(trace_id, new_trace_id(), sampled)
        self._token = _CURRENT.set(self.context)
        self._wall_start = time.time()
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._perf_start
        _CURRENT.reset(self._token)
        duration_ms = duration * 1000.0
        # Head sampling: an unsampled trace's spans are dropped here —
        # unless this one is slow enough to be a tail-latency exemplar.
        if not self.context.sampled and duration_ms < _slow_threshold_ms:
            return False
        record = {
            "trace": self.context.trace_id,
            "span": self.context.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self._wall_start,
            "duration_ms": duration_ms,
            "thread": threading.current_thread().name,
        }
        if not self.context.sampled:
            record["sampled"] = False  # kept only because it crossed slow_ms
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = _clean_attrs(self.attrs)
        _TRACER.emit(record)
        return False


class _NullSpan:
    """Shared no-op stand-in when tracing is inactive."""

    __slots__ = ()
    context = None
    parent_id = None

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, parent: SpanContext | None = None, trace_id: str | None = None, **attrs):
    """Open a span; returns a context manager.

    ``parent`` overrides the ambient context (for cross-thread hops);
    ``trace_id`` seeds a fresh root span with a known id (the HTTP layer
    uses this so the span tree matches the ``X-Repro-Trace`` header).
    """
    if not _TRACER.active:
        return _NULL_SPAN
    return Span(name, parent, trace_id, attrs)


def emit_span(
    name: str,
    seconds: float,
    parent: SpanContext | None = None,
    trace_id: str | None = None,
    **attrs,
) -> SpanContext | None:
    """Record an already-completed region without entering a context.

    Used where the measurement happened on a different thread than the
    logical parent (the batcher measures one coalesced service call and
    attributes it to every submitter's context).  Returns the emitted
    span's context, or None when tracing is inactive.
    """
    if not _TRACER.active:
        return None
    if parent is not None:
        trace = parent.trace_id
        parent_id = parent.span_id
        sampled = getattr(parent, "sampled", True)
    else:
        trace = trace_id or new_trace_id()
        parent_id = None
        sampled = trace_sampled(trace)
    context = SpanContext(trace, new_trace_id(), sampled)
    duration_ms = seconds * 1000.0
    if not sampled and duration_ms < _slow_threshold_ms:
        return context
    record = {
        "trace": context.trace_id,
        "span": context.span_id,
        "parent": parent_id,
        "name": name,
        "ts": time.time() - seconds,
        "duration_ms": duration_ms,
        "thread": threading.current_thread().name,
    }
    if not sampled:
        record["sampled"] = False
    if attrs:
        record["attrs"] = _clean_attrs(attrs)
    _TRACER.emit(record)
    return context
