"""Pluggable persistence backends for the result store.

:class:`~repro.runner.store.ResultStore` owns the *semantics* of a store —
the latest-wins in-memory index, manifest contents, compaction policy —
while a :class:`StoreBackend` owns the *persistence*: where records live on
disk, how an append becomes durable, and how the physical representation is
rewritten during compaction.  Two backends ship:

* :class:`~repro.runner.backends.jsonl.JSONLBackend` — the original
  directory layout (``results.jsonl`` + ``manifest.json``).  Appends are a
  single ``O_APPEND`` write, so concurrent shard writers never interleave
  partial lines.
* :class:`~repro.runner.backends.sqlite.SQLiteBackend` — a single
  ``store.db`` file in WAL mode with one upsert-per-append, safe for
  multi-process writers without any external locking.

Backends are selected by path shape (a ``.db``/``.sqlite`` path or an
existing regular file means SQLite; anything else means a JSONL directory)
or explicitly by name through ``ResultStore(path, backend="sqlite")`` /
``repro run --backend sqlite``.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping

__all__ = [
    "StoreBackend",
    "StoreCorruptionError",
    "backend_names",
    "make_backend",
    "resolve_backend_name",
    "write_json_atomic",
]

#: Path suffixes that select the SQLite backend without an explicit name.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class StoreCorruptionError(RuntimeError):
    """A store's persisted data is damaged beyond the tolerated tail case.

    Raised with the offending location in the message so the operator can
    inspect (and truncate or restore) the damaged region instead of the
    store silently dropping results — a dropped record would make the
    executor re-run the point or, worse, report a grid as smaller than it
    was.
    """


def write_json_atomic(path: Path, payload: dict) -> Path:
    """Write ``payload`` as JSON via a temp file + atomic rename.

    A crash mid-write leaves either the previous file or the new one,
    never a truncated half-document.  The temp name is unique per writer
    (``mkstemp``), so concurrent shard processes rewriting the shared
    store's manifest cannot clobber each other's in-flight temp file —
    last rename wins, and every rename installs a complete document.
    Used for every manifest/metadata write in both backends.
    """
    path = Path(path)
    handle_fd, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise
    return path


class StoreBackend(abc.ABC):
    """Persistence strategy behind one :class:`ResultStore`.

    Subclasses expose:

    * ``name`` — the registry name (``"jsonl"`` / ``"sqlite"``);
    * ``results_path`` — the primary data artifact (JSONL file / SQLite db);
    * ``manifest_path`` — where the JSON manifest summary lives.
    """

    name: str = "abstract"

    def __init__(self, path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------- locations
    @property
    @abc.abstractmethod
    def directory(self) -> Path:
        """Directory that holds the store's artifacts."""

    @property
    @abc.abstractmethod
    def results_path(self) -> Path:
        """The primary on-disk data artifact."""

    @property
    @abc.abstractmethod
    def manifest_path(self) -> Path:
        """Where the JSON manifest is written."""

    # ------------------------------------------------------------------ data
    #: Physical record count observed by the most recent load() — lets
    #: callers that just loaded (e.g. compact) skip a second full parse.
    n_physical_at_load: int = 0

    def load(self) -> dict[str, dict]:
        """Read all persisted records into a hash -> record map.

        Built on :meth:`iterate`: later physical records shadow earlier
        ones for the same hash (latest-wins).  Raises
        :class:`StoreCorruptionError` when the persisted data is damaged
        anywhere a crash-during-append cannot explain.
        """
        index: dict[str, dict] = {}
        count = 0
        for record in self.iterate():
            count += 1
            key = record.get("hash")
            if key:
                index[key] = record
        self.n_physical_at_load = count
        return index

    @abc.abstractmethod
    def append(self, record: dict) -> None:
        """Durably persist one record (upsert semantics by ``record["hash"]``).

        Must be safe against concurrent appenders in other processes: two
        simultaneous appends may interleave *records* but never corrupt
        each other.
        """

    def append_many(self, records: list[dict]) -> None:
        """Durably persist a batch of records.

        The default loops over :meth:`append`; backends override it when
        one batched write is cheaper than N appends (JSONL: one lock + one
        ``write(2)``; SQLite: one transaction).  Same concurrency contract
        as :meth:`append`.
        """
        for record in records:
            self.append(record)

    @abc.abstractmethod
    def iterate(self) -> Iterator[dict]:
        """Yield persisted records in physical order, superseded ones included."""

    def n_physical_records(self) -> int:
        """Count of persisted records, superseded versions included."""
        return sum(1 for _ in self.iterate())

    @abc.abstractmethod
    def compact(self, records: Mapping[str, dict], dropped_hashes: set[str]) -> None:
        """Atomically reduce the physical storage to ``records``.

        ``records`` is the caller's full surviving index and
        ``dropped_hashes`` the keys it decided to remove — a backend may
        rewrite wholesale from ``records`` (JSONL) or delete just
        ``dropped_hashes`` in place (SQLite; this keeps records appended
        by concurrent writers after the caller's load, making compaction
        safe under active appenders).  A crash mid-compaction must leave
        either the old or the new data, never a mix.
        """

    # -------------------------------------------------------------- manifest
    def write_manifest(self, manifest: dict) -> Path:
        """Atomically persist the manifest summary; returns its path."""
        return write_json_atomic(self.manifest_path, manifest)

    def read_manifest(self) -> dict | None:
        """Load the manifest if one was written and parses.

        The manifest is derived data, fully reconstructible from the
        records — a damaged one (e.g. truncated by a crash predating the
        atomic-rename writes) reads as absent, so callers regenerate it
        instead of crashing.
        """
        if not self.manifest_path.exists():
            return None
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def close(self) -> None:
        """Release any held resources (connections, handles)."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}({str(self.path)!r})"


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def resolve_backend_name(path, backend: str | None = None) -> str:
    """Pick a backend for ``path``: explicit name first, then path shape.

    * an explicit ``backend`` must be a registered name;
    * an existing regular file, or a path with a ``.db``/``.sqlite``/
      ``.sqlite3`` suffix, selects SQLite;
    * everything else (existing directory or fresh path) selects JSONL.
    """
    if backend is not None:
        if backend not in _REGISTRY:
            raise ValueError(
                f"unknown store backend {backend!r}; choose from {backend_names()}"
            )
        return backend
    path = Path(path)
    if path.is_file():
        return "sqlite"
    if path.is_dir():
        return "jsonl"
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return "sqlite"
    return "jsonl"


def make_backend(path, backend: str | None = None) -> StoreBackend:
    """Instantiate the backend selected by :func:`resolve_backend_name`."""
    return _REGISTRY[resolve_backend_name(path, backend)](path)


# Populated at the bottom to avoid circular imports: the backend modules
# import the ABC and helpers defined above.
from repro.runner.backends.jsonl import JSONLBackend  # noqa: E402
from repro.runner.backends.sqlite import SQLiteBackend  # noqa: E402

_REGISTRY: dict[str, type[StoreBackend]] = {
    JSONLBackend.name: JSONLBackend,
    SQLiteBackend.name: SQLiteBackend,
}
