"""Directory-of-JSONL store backend (the original on-disk layout).

One directory holds ``results.jsonl`` (one JSON record per line, appended as
runs finish) and ``manifest.json``.  Two properties make this layout safe
for concurrent shard writers:

* every append is a **single** ``write(2)`` on an ``O_APPEND`` descriptor,
  so the kernel serializes whole lines — two processes appending at once
  interleave records, never bytes within a record;
* the only tolerated damage is a truncated *final* line (a writer killed
  mid-append).  An undecodable line anywhere else means real corruption and
  raises :class:`~repro.runner.backends.StoreCorruptionError` naming the
  line, instead of silently dropping results.

When load detects a truncated tail, the first subsequent append repairs it:
the partial line is verified unchanged (under an exclusive ``flock``),
truncated away, and the fresh record appended — so the store never
accumulates a garbage line that a later load would flag as mid-file
corruption.  Writers that opened *before* the crash additionally check the
file ends with a newline before appending, so their records land on a
fresh line instead of fusing with the partial one: the damage stays
localized to the one bad line the corruption error names.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.runner.backends import StoreBackend, StoreCorruptionError

__all__ = ["JSONLBackend", "RESULTS_FILENAME", "MANIFEST_FILENAME"]

RESULTS_FILENAME = "results.jsonl"
MANIFEST_FILENAME = "manifest.json"


class JSONLBackend(StoreBackend):
    """Append-only ``results.jsonl`` in a store directory."""

    name = "jsonl"

    def __init__(self, path) -> None:
        super().__init__(path)
        if self.path.exists() and not self.path.is_dir():
            raise ValueError(
                f"jsonl store path {self.path} is a regular file, not a "
                "directory; a .db/.sqlite file wants --backend sqlite"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        # Set when load() found a truncated final line: the byte offset
        # where the partial line starts and its content, so the next append
        # can verify and truncate it away instead of extending it.
        self._truncated_tail: tuple[int, bytes] | None = None

    # ------------------------------------------------------------- locations
    @property
    def directory(self) -> Path:
        return self.path

    @property
    def results_path(self) -> Path:
        return self.path / RESULTS_FILENAME

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_FILENAME

    # ------------------------------------------------------------------ data
    def _parse_lines(self) -> Iterator[tuple[int, dict]]:
        """Yield ``(line_number, record)`` pairs, policing corruption.

        Only an undecodable *final* line is tolerated (crash mid-append);
        a bad line with valid data after it raises, because silently
        skipping it would drop a result that other lines prove was once
        written correctly.

        Streams the file line by line (stores hold thousands of records,
        each embedding a compatibility matrix — slurping the whole file
        would double-buffer it in RAM on every load/refresh), keeping only
        the current candidate bad tail in memory.
        """
        if not self.results_path.exists():
            return
        # (line number, byte offset, raw bytes to EOF, error detail) of an
        # undecodable line that MAY be a tolerated truncated tail — unless
        # a non-empty line follows it.
        bad: tuple[int, int, bytes, str] | None = None
        offset = 0
        number = 0
        with self.results_path.open("rb") as handle:
            for raw in handle:
                number += 1
                line_offset = offset
                offset += len(raw)
                stripped = raw.strip()
                if not stripped:
                    if bad is not None:
                        # Trailing blank bytes ride along with the bad tail
                        # so the repair truncation covers them too.
                        bad = (bad[0], bad[1], bad[2] + raw, bad[3])
                    continue
                if bad is not None:
                    bad_number, _, _, detail = bad
                    raise StoreCorruptionError(
                        f"{self.results_path}: undecodable JSONL at line "
                        f"{bad_number} ({detail}); lines after it are "
                        "intact, so this is mid-file corruption, not a "
                        "truncated append — inspect the file (or delete "
                        "that line) before reusing the store"
                    )
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    detail = getattr(exc, "msg", str(exc))
                    bad = (number, line_offset, raw, detail)
                    continue
                if not isinstance(record, dict):
                    raise StoreCorruptionError(
                        f"{self.results_path}: line {number} is valid JSON "
                        f"but not an object ({type(record).__name__})"
                    )
                yield number, record
        if bad is not None:
            # Truncated trailing line: a writer died mid-append.
            self._truncated_tail = (bad[1], bad[2])

    def load(self) -> dict[str, dict]:
        self._truncated_tail = None  # re-assessed by the iteration below
        return super().load()

    def _repair_truncated_tail(self) -> None:
        """Truncate the partial final line load() detected, if still there.

        Only repairs when the file still ends with exactly the bytes seen at
        load time — if another process touched the file since, leave it
        alone and let the next load re-assess.  The verify-and-truncate
        pair runs under an exclusive ``flock`` so two recovering writers
        cannot race each other: without it, one could truncate *after* the
        other already appended a fresh record past the damaged tail,
        silently deleting it.  (Closing the descriptor releases the lock.)
        """
        tail_offset, tail_bytes = self._truncated_tail
        self._truncated_tail = None
        descriptor = os.open(self.results_path, os.O_RDWR)
        try:
            if fcntl is not None:
                fcntl.flock(descriptor, fcntl.LOCK_EX)
            size = os.fstat(descriptor).st_size
            if size != tail_offset + len(tail_bytes):
                return
            os.lseek(descriptor, tail_offset, os.SEEK_SET)
            if os.read(descriptor, len(tail_bytes)) != tail_bytes:
                return
            os.ftruncate(descriptor, tail_offset)
        finally:
            os.close(descriptor)

    @staticmethod
    def _encode(record: dict) -> bytes:
        return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")

    def append(self, record: dict) -> None:
        self._append_payload(self._encode(record))

    def append_many(self, records: list[dict]) -> None:
        """Batched append: one lock, one ``write(2)`` for all N records.

        The executor calls this when a worker batch finishes — N result
        records become a single contiguous write instead of N lock/write
        round-trips, and concurrent shard writers interleave at batch
        granularity (still never within a line, it is still one
        ``O_APPEND`` write).
        """
        if not records:
            return
        self._append_payload(b"".join(self._encode(record) for record in records))

    def _append_payload(self, data: bytes) -> None:
        if self._truncated_tail is not None:
            self._repair_truncated_tail()
        # A single O_APPEND write is atomic with respect to other appenders
        # on local filesystems: concurrent shard processes interleave whole
        # records, never partial lines.
        descriptor = os.open(
            self.results_path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            # A *shared* lock: appends run concurrently with each other,
            # but never overlap a repairer's exclusive verify-and-truncate
            # — without it, a repair could chop off a record this append
            # just committed.  (Closing the descriptor releases the lock.)
            if fcntl is not None:
                fcntl.flock(descriptor, fcntl.LOCK_SH)
            # Guard against a sibling writer's crash mid-append: if the file
            # does not end with a newline, start on a fresh line so this
            # record never fuses with the partial one (which stays isolated
            # for the corruption check / tail repair to deal with).  A racing
            # proper append in between merely yields a harmless blank line.
            size = os.fstat(descriptor).st_size
            if (
                size > 0
                and hasattr(os, "pread")
                and os.pread(descriptor, 1, size - 1) != b"\n"
            ):
                data = b"\n" + data
            written = os.write(descriptor, data)
        finally:
            os.close(descriptor)
        if written != len(data):  # pragma: no cover - local fs writes whole
            raise OSError(
                f"short append to {self.results_path}: {written}/{len(data)} bytes"
            )

    def iterate(self) -> Iterator[dict]:
        for _, record in self._parse_lines():
            yield record

    def compact(self, records: Mapping[str, dict], dropped_hashes: set[str]) -> None:
        # Wholesale rewrite from the caller's index: records a concurrent
        # writer appends between that load and the rename below are lost,
        # so gc a JSONL store only when its shard writers are quiescent
        # (the SQLite backend deletes in place and has no such caveat).
        temporary = self.results_path.with_suffix(".jsonl.tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            for key in sorted(records):
                handle.write(json.dumps(records[key], sort_keys=True) + "\n")
        temporary.replace(self.results_path)
        self._truncated_tail = None
