"""SQLite store backend: one ``store.db`` file, safe for multi-process writes.

The database holds a single ``results`` table keyed by the run's content
hash, with the full JSON record as the value.  Three pragmas make it a
drop-in shared result fabric:

* ``journal_mode=WAL`` — readers never block the writer and vice versa, so
  shard processes can append while ``repro report`` reads;
* ``synchronous=NORMAL`` — WAL's durable-enough setting: a crash loses at
  most the last transactions, never corrupts the database;
* ``busy_timeout`` — concurrent appenders queue behind SQLite's write lock
  instead of failing with ``database is locked``.

Appends are upserts, so re-running with ``--force`` replaces the row in
place — unlike JSONL there are never superseded physical records, and
compaction only has failed-record dropping (plus a ``VACUUM``) to do.

The manifest lives next to the database as ``<name>.manifest.json`` (e.g.
``store.db.manifest.json``) so CI artifact uploads and humans read the same
JSON summary regardless of backend.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Iterator, Mapping

from repro.runner.backends import StoreBackend, StoreCorruptionError

__all__ = ["SQLiteBackend"]

BUSY_TIMEOUT_SECONDS = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    hash   TEXT PRIMARY KEY,
    record TEXT NOT NULL
)
"""


class SQLiteBackend(StoreBackend):
    """WAL-mode SQLite file with one upsert per result record."""

    name = "sqlite"

    def __init__(self, path) -> None:
        super().__init__(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection: sqlite3.Connection | None = None
        self._connect()

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            try:
                connection = sqlite3.connect(
                    self.path,
                    timeout=BUSY_TIMEOUT_SECONDS,
                    isolation_level=None,  # autocommit: one append, one txn
                )
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                connection.execute(_SCHEMA)
            except sqlite3.DatabaseError as exc:
                raise StoreCorruptionError(
                    f"{self.path}: not a readable SQLite database ({exc})"
                ) from exc
            self._connection = connection
        return self._connection

    # ------------------------------------------------------------- locations
    @property
    def directory(self) -> Path:
        return self.path.parent

    @property
    def results_path(self) -> Path:
        return self.path

    @property
    def manifest_path(self) -> Path:
        return self.path.with_name(self.path.name + ".manifest.json")

    # ------------------------------------------------------------------ data
    def _decode(self, key: str, payload: str) -> dict:
        try:
            record = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                f"{self.path}: row {key!r} holds undecodable JSON ({exc.msg})"
            ) from exc
        if not isinstance(record, dict):
            raise StoreCorruptionError(
                f"{self.path}: row {key!r} is valid JSON but not an object "
                f"({type(record).__name__})"
            )
        return record

    def append(self, record: dict) -> None:
        self._connect().execute(
            "INSERT INTO results (hash, record) VALUES (?, ?) "
            "ON CONFLICT(hash) DO UPDATE SET record = excluded.record",
            (record["hash"], json.dumps(record, sort_keys=True)),
        )

    def append_many(self, records: list[dict]) -> None:
        """Batched upsert: one transaction (and one fsync) for N records."""
        if not records:
            return
        connection = self._connect()
        with connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(
                "INSERT INTO results (hash, record) VALUES (?, ?) "
                "ON CONFLICT(hash) DO UPDATE SET record = excluded.record",
                [
                    (record["hash"], json.dumps(record, sort_keys=True))
                    for record in records
                ],
            )

    def iterate(self) -> Iterator[dict]:
        # Fetch eagerly: a lazy generator would defer the execute() past
        # this try/except and leak raw sqlite3 errors to load() callers.
        try:
            rows = self._connect().execute(
                "SELECT hash, record FROM results ORDER BY rowid"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptionError(
                f"{self.path}: could not read results table ({exc})"
            ) from exc
        return iter([self._decode(key, payload) for key, payload in rows])

    def n_physical_records(self) -> int:
        (count,) = self._connect().execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        return int(count)

    def compact(self, records: Mapping[str, dict], dropped_hashes: set[str]) -> None:
        # Upserts keep one latest row per hash, so the surviving set is
        # simply "everything minus the dropped hashes" — deleting those in
        # one transaction (instead of rewriting the table from the caller's
        # snapshot) means rows appended by concurrent shard writers since
        # that snapshot survive compaction untouched.
        connection = self._connect()
        with connection:  # one transaction: either all deletes or none
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(
                "DELETE FROM results WHERE hash = ?",
                [(key,) for key in sorted(dropped_hashes)],
            )
        try:
            # Space reclaim is cosmetic; VACUUM needs exclusive access and
            # must not fail the gc when shard writers are actively
            # appending (the deletes above already committed).
            connection.execute("VACUUM")
        except sqlite3.OperationalError:
            pass

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None
