"""Parallel experiment executor: fan runs out over worker processes.

The executor turns a list of :class:`~repro.runner.spec.RunSpec` points into
result records, as fast as the hardware allows:

* **Batching by graph config** — runs are grouped by
  :attr:`~repro.runner.spec.RunSpec.graph_hash`; a worker builds each batch's
  graph once and reuses its cached operator layer (normalizations, spectral
  radius) across every run in the batch, so the per-run setup cost is paid
  per graph, not per point.
* **Skip-if-cached** — runs whose hash already has an ``ok`` record in the
  :class:`~repro.runner.store.ResultStore` are never re-executed; failed and
  timed-out runs are retried (pass ``force=True`` to re-execute everything).
* **Determinism** — every run's RNG seed derives from its content hash and
  estimators that accept a ``seed`` are seeded the same way, so the parallel
  schedule produces bitwise-identical result payloads to a serial execution.
* **Isolation** — a run that raises is captured as an ``error`` record with
  its traceback; a run exceeding ``timeout`` seconds is captured as a
  ``timeout`` record.  Neither takes down the grid.

``n_workers <= 1`` runs everything in-process through the *same* batch code
path — the serial fallback is not a separate implementation that could
drift.  The sweep functions in :mod:`repro.eval.sweeps` reuse the batch
machinery through :func:`run_experiment_batches`.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.eval.experiment import ExperimentResult, run_experiment
from repro.graph.graph import Graph
from repro.propagation.engine import ESTIMATORS
from repro.runner.spec import GridSpec, RunSpec, build_graph
from repro.runner.store import ResultStore

__all__ = [
    "RunOutcome",
    "ExecutionReport",
    "chunk_evenly",
    "execute_grid",
    "run_experiment_batches",
    "RunTimeoutError",
    "TimeoutUnsupportedError",
]


def chunk_evenly(items: list, n_chunks: int) -> list[list]:
    """Split a list into at most ``n_chunks`` contiguous, near-equal chunks.

    An empty list yields no chunks (not one empty chunk); the single
    chunking helper shared by the grid batcher and the sweep port.
    """
    if not items:
        return []
    n_chunks = max(1, min(n_chunks, len(items)))
    chunk_size = -(-len(items) // n_chunks)  # ceil division
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


class RunTimeoutError(Exception):
    """Raised inside a worker when a single run exceeds its time budget."""


class TimeoutUnsupportedError(RuntimeError):
    """A per-run timeout was requested where SIGALRM cannot enforce it.

    Deliberately NOT captured as a per-run ``error`` record: it is a usage
    error of the whole execution, not a property of one run, and silently
    recording every run as failed would bury it.
    """


def _call_with_timeout(function: Callable, timeout: float | None):
    """Call ``function()`` under a SIGALRM-based wall-clock budget.

    Falls back to an unbounded call when no timeout is requested or the
    platform lacks ``SIGALRM`` (nothing to enforce it with).  A timeout
    requested off the main thread raises immediately: signal handlers can
    only be installed on the main thread, and silently running without the
    budget would let a hung run stall the whole grid.

    The previous handler and itimer are restored on *every* exit path —
    normal return, the run raising, or the timeout firing — with the timer
    cleared before the handler is swapped back so a pending alarm can
    never reach the caller's old handler.
    """
    if not timeout:
        return function()
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - POSIX-only gap
        return function()
    if threading.current_thread() is not threading.main_thread():
        raise TimeoutUnsupportedError(
            "per-run timeouts use SIGALRM, which Python only allows on the "
            "main thread; call execute_grid from the main thread, use "
            "n_workers > 1 (workers run on their own main threads), or "
            "pass timeout=None"
        )

    def _alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded the {timeout:g}s budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    try:
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return function()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
    finally:
        signal.signal(signal.SIGALRM, previous)


# ------------------------------------------------------------------ outcomes
@dataclass
class RunOutcome:
    """Result of one run: the spec plus what happened when it executed.

    ``result`` holds only deterministic fields (accuracy, L2, matrix,
    iteration counts ...), ``timing`` the wall-clock measurements — kept
    apart so parallel and serial executions of the same spec produce
    byte-identical ``result`` payloads and the equality is testable.
    """

    spec: RunSpec
    status: str  # "ok" | "error" | "timeout" | "cached"
    result: dict | None = None
    timing: dict = field(default_factory=dict)
    error: str | None = None
    worker_pid: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def to_record(self) -> dict:
        """The JSON record persisted in the result store."""
        return {
            "hash": self.spec.content_hash,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "result": self.result,
            "timing": self.timing,
            "error": self.error,
            "worker_pid": self.worker_pid,
        }

    @classmethod
    def from_record(cls, record: dict, status: str | None = None) -> "RunOutcome":
        return cls(
            spec=RunSpec.from_dict(record["spec"]),
            status=status or record.get("status", "unknown"),
            result=record.get("result"),
            timing=record.get("timing", {}),
            error=record.get("error"),
            worker_pid=int(record.get("worker_pid", 0)),
        )


@dataclass
class ExecutionReport:
    """Summary of one :func:`execute_grid` call."""

    outcomes: list[RunOutcome]
    n_cached: int
    n_executed: int
    n_errors: int
    n_workers: int
    elapsed_seconds: float

    @property
    def n_total(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requested runs served from the store."""
        return self.n_cached / self.n_total if self.n_total else 0.0


# ----------------------------------------------------------- run one / batch
def _build_estimator(spec: RunSpec):
    """Instantiate the spec's estimator, seeding it from the run seed.

    When the estimator class accepts a ``seed`` argument and the spec's
    kwargs do not pin one, the hash-derived run seed is used — randomized
    estimators (DCEr restarts, Holdout splits) then behave identically
    regardless of which worker executes the run.
    """
    cls = ESTIMATORS[spec.estimator]
    kwargs = dict(spec.estimator_kwargs)
    accepted = inspect.signature(cls.__init__).parameters
    if "seed" in accepted and "seed" not in kwargs:
        kwargs["seed"] = spec.run_seed
    return cls(**kwargs)


def _result_payload(record: ExperimentResult) -> tuple[dict, dict]:
    """Split an experiment record into (deterministic, timing) dictionaries."""
    deterministic = {
        "method": record.method,
        "label_fraction": record.label_fraction,
        "n_seeds": record.n_seeds,
        "accuracy": record.accuracy,
        "l2_to_gold": record.l2_to_gold,
        "compatibility": np.asarray(record.compatibility).tolist(),
        "propagator": record.propagator,
        "propagation_iterations": record.propagation_iterations,
        "propagation_converged": record.propagation_converged,
    }
    timing = {
        "estimation_seconds": record.estimation_seconds,
        "propagation_seconds": record.propagation_seconds,
    }
    return deterministic, timing


def _record_run_metrics(outcome: RunOutcome) -> None:
    """Tally one run on the metrics registry (status, wall time, phases)."""
    if not obs.enabled():
        return
    registry = obs.metrics()
    registry.counter(
        "repro_runner_runs_total",
        "Grid runs executed, by outcome status.",
        status=outcome.status,
    ).inc()
    total = outcome.timing.get("total_seconds")
    if total is not None:
        registry.histogram(
            "repro_runner_run_seconds", "End-to-end wall time of one grid run."
        ).observe(total)
    for phase in ("estimation", "propagation"):
        seconds = outcome.timing.get(f"{phase}_seconds")
        if seconds is not None:
            registry.histogram(
                "repro_runner_phase_seconds",
                "Per-phase wall time inside one grid run.",
                phase=phase,
            ).observe(seconds)


def _execute_one(graph: Graph, spec: RunSpec, timeout: float | None) -> RunOutcome:
    """Execute a single spec on an already-built graph, capturing failures."""
    with obs.span(
        "runner.run", run=spec.content_hash[:12], method=spec.estimator
    ):
        outcome = _execute_one_inner(graph, spec, timeout)
    _record_run_metrics(outcome)
    return outcome


def _execute_one_inner(
    graph: Graph, spec: RunSpec, timeout: float | None
) -> RunOutcome:
    started = time.perf_counter()
    try:
        record = _call_with_timeout(
            lambda: run_experiment(
                graph,
                _build_estimator(spec),
                label_fraction=spec.label_fraction,
                seed=spec.run_seed,
                propagator=spec.propagator,
                propagator_kwargs=dict(spec.propagator_kwargs) or None,
                **spec.experiment_kwargs,
            ),
            timeout,
        )
    except RunTimeoutError as exc:
        return RunOutcome(
            spec=spec,
            status="timeout",
            error=str(exc),
            timing={"total_seconds": time.perf_counter() - started},
            worker_pid=os.getpid(),
        )
    except TimeoutUnsupportedError:
        raise  # execution-level usage error, not a per-run failure
    except Exception:
        return RunOutcome(
            spec=spec,
            status="error",
            error=traceback.format_exc(),
            timing={"total_seconds": time.perf_counter() - started},
            worker_pid=os.getpid(),
        )
    result, timing = _result_payload(record)
    timing["total_seconds"] = time.perf_counter() - started
    return RunOutcome(
        spec=spec,
        status="ok",
        result=result,
        timing=timing,
        worker_pid=os.getpid(),
    )


def _execute_batch(batch) -> tuple[int, list[tuple[int, RunOutcome]], dict | None]:
    """Worker entry point: build the batch's graph once, run every spec.

    ``batch`` is ``(batch_index, graph_config, [(run_index, spec), ...],
    timeout)``.  Must stay a module-level function so it pickles for the
    process pool.

    The third element of the return is the batch's metrics delta — a
    :func:`repro.obs.diff_snapshots` of the worker's global registry taken
    around the batch.  Pool workers are separate processes, so their counter
    increments would otherwise vanish with them; the parent merges the delta
    back (only on the pooled path — in-process execution already recorded
    directly on the live registry).
    """
    batch_index, graph_config, indexed_specs, timeout = batch
    before = obs.metrics().snapshot() if obs.enabled() else None

    def _metrics_delta() -> dict | None:
        if before is None:
            return None
        return obs.diff_snapshots(before, obs.metrics().snapshot())

    try:
        graph = build_graph(graph_config)
    except Exception:
        error = traceback.format_exc()
        failed = [
            (
                run_index,
                RunOutcome(
                    spec=spec, status="error", error=error, worker_pid=os.getpid()
                ),
            )
            for run_index, spec in indexed_specs
        ]
        return batch_index, failed, _metrics_delta()
    outcomes = [
        (run_index, _execute_one(graph, spec, timeout))
        for run_index, spec in indexed_specs
    ]
    return batch_index, outcomes, _metrics_delta()


def _pool_context():
    """Prefer fork (cheap, inherits the loaded modules), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _make_batches(
    pending: list[tuple[int, RunSpec]], n_workers: int, timeout: float | None
) -> list[tuple]:
    """Group pending runs by graph config, then split groups across workers.

    Each batch carries one graph config and is built by its worker exactly
    once.  When there are fewer graph configs than workers, groups are split
    into just enough chunks to occupy the pool — a single-graph grid still
    uses every worker, at the cost of rebuilding that graph once per chunk,
    while a grid with >= ``n_workers`` graphs keeps one build per graph.
    """
    groups: dict[str, list[tuple[int, RunSpec]]] = {}
    for run_index, spec in pending:
        groups.setdefault(spec.graph_hash, []).append((run_index, spec))
    batches: list[tuple] = []
    chunks_per_group = max(1, -(-n_workers // max(1, len(groups))))  # ceil
    for group in groups.values():
        graph_config = group[0][1].graph
        for chunk in chunk_evenly(group, chunks_per_group):
            batches.append((len(batches), graph_config, chunk, timeout))
    return batches


# --------------------------------------------------------------- grid runner
def execute_grid(
    grid: GridSpec | Sequence[RunSpec],
    store: ResultStore | None = None,
    n_workers: int = 1,
    timeout: float | None = None,
    force: bool = False,
    progress: Callable[[RunOutcome], None] | None = None,
) -> ExecutionReport:
    """Execute a grid (or an explicit run list), returning every outcome.

    Parameters
    ----------
    grid:
        A :class:`~repro.runner.spec.GridSpec` or a pre-expanded sequence of
        :class:`~repro.runner.spec.RunSpec` (lists from several grids can be
        concatenated into one execution sharing a store).
    store:
        Optional :class:`~repro.runner.store.ResultStore`.  Runs with an
        ``ok`` record are returned as ``cached`` outcomes without executing;
        fresh outcomes are appended as they finish and the manifest is
        rewritten at the end.
    n_workers:
        Worker process count; ``<= 1`` executes serially in-process through
        the same code path.
    timeout:
        Optional per-run wall-clock budget in seconds.
    force:
        Re-execute runs even when the store already holds an ``ok`` record.
    progress:
        Callback invoked once per outcome (cached ones first, then executed
        ones as their batches complete).

    Returns
    -------
    An :class:`ExecutionReport` whose ``outcomes`` follow the expansion
    order of the input, regardless of completion order.
    """
    runs = list(grid.expand() if isinstance(grid, GridSpec) else grid)
    started = time.perf_counter()

    outcomes: list[RunOutcome | None] = [None] * len(runs)
    pending: list[tuple[int, RunSpec]] = []
    n_cached = 0
    for run_index, spec in enumerate(runs):
        record = store.get(spec.content_hash) if store is not None else None
        if record is not None and record.get("status") == "ok" and not force:
            outcome = RunOutcome.from_record(record, status="cached")
            outcomes[run_index] = outcome
            n_cached += 1
            if progress is not None:
                progress(outcome)
        else:
            pending.append((run_index, spec))

    batches = _make_batches(pending, n_workers, timeout)

    def _absorb(batch_result, merge_metrics: bool = False) -> None:
        _, indexed_outcomes, metrics_delta = batch_result
        if merge_metrics and metrics_delta:
            # Pool workers tallied onto their own (forked/spawned) registry
            # copies; fold their deltas into the live one.  The serial path
            # skips this — it already recorded in-process.
            obs.metrics().merge_snapshot(metrics_delta)
        if store is not None:
            # One batched append per finished worker batch: a single locked
            # write (JSONL) or transaction (SQLite) instead of one
            # round-trip per run.  Persist before reporting progress so a
            # crash mid-callback never claims more than the store holds.
            store.append_many(
                [outcome.to_record() for _, outcome in indexed_outcomes]
            )
        for run_index, outcome in indexed_outcomes:
            outcomes[run_index] = outcome
            if progress is not None:
                progress(outcome)

    if batches:
        if n_workers > 1:
            context = _pool_context()
            with context.Pool(processes=n_workers) as pool:
                for batch_result in pool.imap_unordered(_execute_batch, batches):
                    _absorb(batch_result, merge_metrics=True)
        else:
            for batch in batches:
                _absorb(_execute_batch(batch))

    if store is not None:
        # A pure cache replay appended nothing, so a manifest that matches
        # the store can be kept as-is, sparing replays the full store
        # re-read that write_manifest's refresh implies.  A missing,
        # unparseable, or stale manifest (e.g. a prior execution crashed
        # after appending but before its manifest write) is regenerated.
        manifest = store.read_manifest() if not pending else None
        if (
            pending
            or manifest is None
            or manifest.get("n_records") != len(store)
            or manifest.get("status_counts") != store.status_counts()
        ):
            store.write_manifest()

    completed = [outcome for outcome in outcomes if outcome is not None]
    n_errors = sum(1 for outcome in completed if outcome.status in ("error", "timeout"))
    return ExecutionReport(
        outcomes=completed,
        n_cached=n_cached,
        n_executed=len(pending),
        n_errors=n_errors,
        n_workers=max(1, n_workers),
        elapsed_seconds=time.perf_counter() - started,
    )


# ------------------------------------------------------------- sweep support
def _execute_sweep_batch(batch) -> list[tuple[int, ExperimentResult]]:
    """Worker entry point for in-memory sweep tasks.

    ``batch`` is ``(graph, [task, ...])`` where each task dict carries its
    original position, the method name, a ready estimator instance, the seed
    and the remaining :func:`run_experiment` keyword arguments.  The graph
    and estimators travel by pickle, so a worker reuses one graph (and its
    cached operator layer) for the whole batch.
    """
    graph, tasks = batch
    results = []
    for task in tasks:
        record = run_experiment(
            graph,
            task["estimator"],
            label_fraction=task["label_fraction"],
            seed=task["seed"],
            **task["kwargs"],
        )
        record.method = task["method"]
        results.append((task["index"], record))
    return results


def run_experiment_batches(
    batches: Iterable[tuple[Graph, list[dict]]], n_workers: int = 1
) -> list[ExperimentResult]:
    """Execute sweep task batches, returning records in task-index order.

    The serial path (``n_workers <= 1``) runs batches in order in-process —
    byte-identical to the historical nested-loop sweeps.  The parallel path
    fans batches out over a process pool and reorders on collection, so the
    caller sees the same record list either way.
    """
    batches = [batch for batch in batches if batch[1]]
    collected: list[tuple[int, ExperimentResult]] = []
    if n_workers > 1 and len(batches) > 1:
        context = _pool_context()
        with context.Pool(processes=n_workers) as pool:
            for results in pool.imap_unordered(_execute_sweep_batch, batches):
                collected.extend(results)
    else:
        for batch in batches:
            collected.extend(_execute_sweep_batch(batch))
    collected.sort(key=lambda pair: pair[0])
    return [record for _, record in collected]
