"""Content-addressed result store with pluggable persistence backends.

One store holds the results of any number of grid executions, keyed purely
by run content hash — so a store can be shared between grids, worker
machines, or shard processes, and merging two stores is a set union.  The
store layer owns the *semantics*:

* a latest-wins in-memory index rebuilt from the backend at open time;
* the manifest summary (record count, status tally, one line per hash) that
  CI uploads as a build artifact;
* compaction policy (``repro gc``): one live record per hash, optionally
  dropping failed records so they re-execute;
* :func:`merge_stores` — the content-addressed union behind ``repro merge``.

Persistence lives behind :class:`~repro.runner.backends.StoreBackend`:

* ``jsonl`` (default) — a directory with ``results.jsonl`` +
  ``manifest.json``; appends are single ``O_APPEND`` writes, safe for
  concurrent shard writers;
* ``sqlite`` — a single WAL-mode database file with upsert-by-hash appends.

The backend is chosen from the path shape (``store.db`` → SQLite, a
directory → JSONL) or pinned explicitly with ``ResultStore(path,
backend="sqlite")``.

The store is the cache behind skip-if-cached resume: the executor asks
:meth:`ResultStore.__contains__` for every expanded run hash and only
executes the misses.  Append order carries no meaning.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.backends import StoreCorruptionError, make_backend
from repro.runner.backends.jsonl import MANIFEST_FILENAME, RESULTS_FILENAME
from repro.runner.spec import canonical_json

__all__ = [
    "ResultStore",
    "StoreCorruptionError",
    "merge_stores",
    "RESULTS_FILENAME",
    "MANIFEST_FILENAME",
]

STORE_VERSION = 1


class ResultStore:
    """Backend-backed map from run content hash to result record.

    Opening a store reads every persisted record into an in-memory index;
    appends go straight to the backend and update the index.  A record
    written twice for the same hash keeps the latest version — re-running
    with ``--force`` simply shadows the old one.

    Parameters
    ----------
    path:
        Store location: a directory (JSONL backend) or a ``.db``/
        ``.sqlite`` file (SQLite backend).
    backend:
        Explicit backend name (``"jsonl"`` / ``"sqlite"``) overriding the
        path-shape heuristic.
    """

    def __init__(self, path, backend: str | None = None) -> None:
        self.path = Path(path)
        self.backend = make_backend(self.path, backend)
        self._index: dict[str, dict] = self.backend.load()

    # ----------------------------------------------------------- delegation
    @property
    def backend_name(self) -> str:
        """Name of the persistence backend (``"jsonl"`` / ``"sqlite"``)."""
        return self.backend.name

    @property
    def directory(self) -> Path:
        """Directory holding the store's artifacts (the parent for SQLite)."""
        return self.backend.directory

    @property
    def results_path(self) -> Path:
        """The primary data artifact (JSONL file or SQLite database)."""
        return self.backend.results_path

    @property
    def manifest_path(self) -> Path:
        return self.backend.manifest_path

    def refresh(self) -> None:
        """Re-read the backend, picking up records other processes appended."""
        self._index = self.backend.load()

    def close(self) -> None:
        """Release backend resources (SQLite connection; no-op for JSONL)."""
        self.backend.close()

    # ------------------------------------------------------------ dict-like
    def __contains__(self, run_hash: str) -> bool:
        return run_hash in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, run_hash: str) -> dict | None:
        """Return the record for ``run_hash`` (None when absent)."""
        return self._index.get(run_hash)

    def hashes(self) -> list[str]:
        """Sorted content hashes present in the store."""
        return sorted(self._index)

    def records(self) -> list[dict]:
        """All records, sorted by hash for a deterministic listing."""
        return [self._index[key] for key in self.hashes()]

    def n_physical_records(self) -> int:
        """Persisted record count, superseded versions included."""
        return self.backend.n_physical_records()

    # ---------------------------------------------------------------- write
    def append(self, record: dict) -> None:
        """Persist one result record (must carry a ``"hash"`` key)."""
        key = record.get("hash")
        if not key:
            raise ValueError("result record needs a 'hash' key")
        self.backend.append(record)
        self._index[key] = record

    def append_many(self, records: list[dict]) -> None:
        """Persist a batch of records through one backend write.

        Validation happens before anything is persisted, so a bad record
        (missing ``"hash"``) fails the whole batch instead of leaving it
        half-written.  The JSONL backend turns this into a single locked
        ``write(2)``, SQLite into one transaction; the executor uses it to
        flush a finished worker batch without N append round-trips.
        """
        for record in records:
            if not record.get("hash"):
                raise ValueError("result record needs a 'hash' key")
        self.backend.append_many(records)
        for record in records:
            self._index[record["hash"]] = record

    def status_counts(self) -> dict[str, int]:
        """Tally of record statuses (``ok`` / ``error`` / ``timeout``)."""
        counts: dict[str, int] = {}
        for record in self._index.values():
            status = record.get("status", "unknown")
            counts[status] = counts.get(status, 0) + 1
        return counts

    def write_manifest(self, extra: dict | None = None, refresh: bool = True) -> Path:
        """(Re)write the manifest summarizing the store's contents.

        With ``refresh=True`` (the default) the index is first re-read from
        the backend, so a manifest written at the end of one shard's
        execution covers every record other shards persisted in the
        meantime, not just this process's view.  The write itself goes
        through a temp file + atomic rename — a crash mid-write leaves the
        previous manifest intact, never a truncated one.
        """
        if refresh:
            self.refresh()
        entries = []
        for key in self.hashes():
            record = self._index[key]
            spec = record.get("spec", {})
            entries.append(
                {
                    "hash": key,
                    "status": record.get("status"),
                    "estimator": spec.get("estimator"),
                    "propagator": spec.get("propagator"),
                    "label_fraction": spec.get("label_fraction"),
                    "repetition": spec.get("repetition"),
                    "graph": spec.get("graph", {}).get("name")
                    or spec.get("graph", {}).get("kind"),
                }
            )
        manifest = {
            "version": STORE_VERSION,
            "backend": self.backend_name,
            "n_records": len(self._index),
            "status_counts": self.status_counts(),
            "records": entries,
        }
        if extra:
            manifest.update(extra)
        return self.backend.write_manifest(manifest)

    def compact(self, drop_failed: bool = False) -> dict:
        """Garbage-collect the store: one record per hash, manifest refreshed.

        JSONL stores accumulate superseded lines — every ``--force`` re-run
        and every retried failure appends a new record that shadows the
        previous one for the same hash; compaction rewrites the file with
        exactly the records the index already serves.  SQLite stores upsert
        in place, so they never hold superseded versions and compaction
        only drops failed records (and reclaims file space).

        With ``drop_failed=True``, records whose status is not ``"ok"`` are
        removed entirely, so the corresponding runs re-execute on the next
        grid execution instead of surfacing stale errors.

        The rewrite is atomic in both backends: a crash mid-compaction
        leaves either the old or the new data, never a mix.  Under
        *concurrent appenders*, the SQLite backend is fully safe (it only
        deletes the dropped hashes, in one transaction); the JSONL backend
        rewrites the file wholesale from this process's view, so gc a
        shared JSONL store only while its shard writers are quiescent.

        Returns a stats dict: ``n_lines_before``, ``n_kept``,
        ``n_dropped_superseded``, ``n_dropped_failed``.
        """
        # Pick up records concurrent shard writers appended since this
        # process opened the store — the rewrite below replaces the physical
        # storage wholesale, so compacting from a stale index would delete
        # their results.  The load also counts the physical records, saving
        # a second full parse.
        self.refresh()
        n_before = self.backend.n_physical_at_load
        kept: dict[str, dict] = {}
        n_dropped_failed = 0
        for key in self.hashes():
            record = self._index[key]
            if drop_failed and record.get("status") != "ok":
                n_dropped_failed += 1
                continue
            kept[key] = record
        self.backend.compact(kept, set(self._index) - set(kept))
        self._index = kept
        self.write_manifest(refresh=False)
        return {
            "n_lines_before": n_before,
            "n_kept": len(kept),
            "n_dropped_superseded": n_before - len(kept) - n_dropped_failed,
            "n_dropped_failed": n_dropped_failed,
        }

    def read_manifest(self) -> dict | None:
        """Load the manifest if present."""
        return self.backend.read_manifest()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"ResultStore({str(self.path)!r}, backend={self.backend_name!r}, "
            f"n_records={len(self)})"
        )


def _record_identity(record: dict) -> tuple:
    """The deterministic identity of a record, for merge conflict detection.

    Timing and worker pid legitimately differ between two honest
    executions of the same spec; a "conflict" is only a disagreement on
    the fields that determinism guarantees (spec, status, result, error).
    """
    return tuple(
        canonical_json(record.get(field))
        for field in ("hash", "spec", "status", "result", "error")
    )


def merge_stores(destination: ResultStore, sources: list[ResultStore]) -> dict:
    """Union ``sources`` into ``destination``, latest-wins, reporting conflicts.

    Records are content-addressed, so two stores holding the same hash
    *should* agree on its deterministic payload (spec, status, result);
    when they do, the merge skips the copy — nondeterministic timing and
    worker-pid differences between honest re-executions are not conflicts.
    When the deterministic payloads differ (a ``--force`` re-run, a
    retried failure, a records-differ bug), the incoming record wins —
    sources are applied in order, each overriding the destination and
    earlier sources — and the hash lands in the conflict report so the
    caller can audit.

    Returns ``{"n_sources", "n_added", "n_identical", "n_conflicts",
    "conflicts": [{"hash", "old_status", "new_status"}, ...]}``; the
    destination manifest is rewritten at the end.
    """
    n_added = 0
    n_identical = 0
    conflicts: list[dict] = []
    for source in sources:
        for record in source.records():
            key = record["hash"]
            existing = destination.get(key)
            if existing is None:
                destination.append(record)
                n_added += 1
            elif _record_identity(existing) == _record_identity(record):
                n_identical += 1
            else:
                conflicts.append(
                    {
                        "hash": key,
                        "old_status": existing.get("status"),
                        "new_status": record.get("status"),
                    }
                )
                destination.append(record)
    destination.write_manifest(refresh=False)
    return {
        "n_sources": len(sources),
        "n_added": n_added,
        "n_identical": n_identical,
        "n_conflicts": len(conflicts),
        "conflicts": conflicts,
    }
