"""Content-addressed on-disk result store: append-only JSONL plus manifest.

One store directory holds the results of any number of grid executions:

* ``results.jsonl`` — one JSON record per completed run, appended as runs
  finish.  Each record carries the run's content hash, its full spec, the
  deterministic result payload, and the non-deterministic extras (timings,
  worker pid) kept separate so two executions of the same spec produce
  byte-identical ``result`` payloads.
* ``manifest.json`` — a small index written after every execution: record
  count, status tally, and one summary line per hash.  CI uploads this file
  as a build artifact; humans read it to see what a store contains without
  parsing the JSONL.

The store is the cache behind skip-if-cached resume: the executor asks
:meth:`ResultStore.__contains__` for every expanded run hash and only
executes the misses.  Records are keyed purely by the spec hash, so a store
can be shared between grids, machines, or future distributed shards — append
order carries no meaning.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["ResultStore", "RESULTS_FILENAME", "MANIFEST_FILENAME"]

RESULTS_FILENAME = "results.jsonl"
MANIFEST_FILENAME = "manifest.json"
STORE_VERSION = 1


class ResultStore:
    """Directory-backed map from run content hash to result record.

    Opening a store re-reads ``results.jsonl`` into an in-memory index;
    appends go straight to disk (line-buffered, one fsync-free write per
    record) and update the index.  A record written twice for the same hash
    keeps the latest version in the index — re-running with ``--force``
    simply shadows the old line.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / RESULTS_FILENAME
        self.manifest_path = self.directory / MANIFEST_FILENAME
        self._index: dict[str, dict] = {}
        self._load()

    # ----------------------------------------------------------------- load
    def _load(self) -> None:
        if not self.results_path.exists():
            return
        with self.results_path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A truncated trailing line (killed run) must not brick
                    # the store; everything before it is still valid.
                    continue
                key = record.get("hash")
                if key:
                    self._index[key] = record

    # ------------------------------------------------------------ dict-like
    def __contains__(self, run_hash: str) -> bool:
        return run_hash in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, run_hash: str) -> dict | None:
        """Return the record for ``run_hash`` (None when absent)."""
        return self._index.get(run_hash)

    def hashes(self) -> list[str]:
        """Sorted content hashes present in the store."""
        return sorted(self._index)

    def records(self) -> list[dict]:
        """All records, sorted by hash for a deterministic listing."""
        return [self._index[key] for key in self.hashes()]

    # ---------------------------------------------------------------- write
    def append(self, record: dict) -> None:
        """Persist one result record (must carry a ``"hash"`` key)."""
        key = record.get("hash")
        if not key:
            raise ValueError("result record needs a 'hash' key")
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[key] = record

    def status_counts(self) -> dict[str, int]:
        """Tally of record statuses (``ok`` / ``error`` / ``timeout``)."""
        counts: dict[str, int] = {}
        for record in self._index.values():
            status = record.get("status", "unknown")
            counts[status] = counts.get(status, 0) + 1
        return counts

    def write_manifest(self, extra: dict | None = None) -> Path:
        """(Re)write ``manifest.json`` summarizing the store's contents."""
        entries = []
        for key in self.hashes():
            record = self._index[key]
            spec = record.get("spec", {})
            entries.append(
                {
                    "hash": key,
                    "status": record.get("status"),
                    "estimator": spec.get("estimator"),
                    "propagator": spec.get("propagator"),
                    "label_fraction": spec.get("label_fraction"),
                    "repetition": spec.get("repetition"),
                    "graph": spec.get("graph", {}).get("name")
                    or spec.get("graph", {}).get("kind"),
                }
            )
        manifest = {
            "version": STORE_VERSION,
            "n_records": len(self._index),
            "status_counts": self.status_counts(),
            "records": entries,
        }
        if extra:
            manifest.update(extra)
        self.manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return self.manifest_path

    def compact(self, drop_failed: bool = False) -> dict:
        """Garbage-collect the JSONL: one line per hash, manifest refreshed.

        Long-lived stores accumulate superseded lines — every ``--force``
        re-run and every retried failure appends a new record that shadows
        the previous one for the same hash.  Compaction rewrites
        ``results.jsonl`` with exactly the records the in-memory index
        already serves (latest line per hash, i.e. semantics are unchanged),
        drops everything shadowed, and rewrites the manifest to match.

        With ``drop_failed=True``, records whose status is not ``"ok"`` are
        removed entirely, so the corresponding runs re-execute on the next
        grid execution instead of surfacing stale errors.

        The rewrite goes through a temporary file in the store directory
        followed by an atomic replace, so a crash mid-compaction leaves
        either the old or the new file, never a truncated one.

        Returns a stats dict: ``n_lines_before``, ``n_kept``,
        ``n_dropped_superseded``, ``n_dropped_failed``.
        """
        n_lines_before = 0
        if self.results_path.exists():
            with self.results_path.open("r", encoding="utf-8") as handle:
                n_lines_before = sum(1 for line in handle if line.strip())

        kept: dict[str, dict] = {}
        n_dropped_failed = 0
        for key in self.hashes():
            record = self._index[key]
            if drop_failed and record.get("status") != "ok":
                n_dropped_failed += 1
                continue
            kept[key] = record

        temporary = self.results_path.with_suffix(".jsonl.tmp")
        with temporary.open("w", encoding="utf-8") as handle:
            for key in sorted(kept):
                handle.write(json.dumps(kept[key], sort_keys=True) + "\n")
        temporary.replace(self.results_path)

        self._index = kept
        self.write_manifest()
        return {
            "n_lines_before": n_lines_before,
            "n_kept": len(kept),
            "n_dropped_superseded": n_lines_before - len(kept) - n_dropped_failed,
            "n_dropped_failed": n_dropped_failed,
        }

    def read_manifest(self) -> dict | None:
        """Load ``manifest.json`` if present."""
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ResultStore({str(self.directory)!r}, n_records={len(self)})"
