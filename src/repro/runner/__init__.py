"""Parallel experiment orchestration with a content-addressed result store.

The runner subsystem turns the (graph config x estimator x propagator x
label fraction x repetition) grids behind the paper's figures into
declarative, cacheable, parallel executions:

* :mod:`repro.runner.spec` — :class:`RunSpec`/:class:`GridSpec`: declare a
  grid over the registries, expand it into hashed run descriptions.
* :mod:`repro.runner.executor` — :func:`execute_grid`: multiprocessing
  fan-out with per-graph batching, per-run timeouts, error capture and
  hash-derived deterministic RNG (parallel == serial, bitwise).
* :mod:`repro.runner.store` — :class:`ResultStore`: content-hash-keyed
  records over pluggable backends (JSONL directory or WAL-mode SQLite
  file, see :mod:`repro.runner.backends`), giving skip-if-cached resume,
  safe concurrent shard writers, and :func:`merge_stores` unions.
* :mod:`repro.runner.progress` — live progress lines and store reports
  rendered through :mod:`repro.eval.reporting`.

Quickstart
----------
>>> from repro.runner import GridSpec, ResultStore, execute_grid
>>> grid = GridSpec(
...     graphs=[{"kind": "generate", "n_nodes": 300, "n_edges": 1500, "seed": 1}],
...     estimators=["MCE"],
...     label_fractions=[0.1],
... )
>>> report = execute_grid(grid)  # doctest: +SKIP
"""

from repro.runner.executor import (
    ExecutionReport,
    RunOutcome,
    RunTimeoutError,
    execute_grid,
    run_experiment_batches,
)
from repro.runner.progress import (
    ProgressPrinter,
    render_store_report,
    store_to_sweep,
    summarize_report,
)
from repro.runner.spec import GridSpec, RunSpec, build_graph, content_hash
from repro.runner.store import ResultStore, StoreCorruptionError, merge_stores

__all__ = [
    "ExecutionReport",
    "GridSpec",
    "ProgressPrinter",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "RunTimeoutError",
    "StoreCorruptionError",
    "build_graph",
    "content_hash",
    "execute_grid",
    "merge_stores",
    "render_store_report",
    "run_experiment_batches",
    "store_to_sweep",
    "summarize_report",
]
