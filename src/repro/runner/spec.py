"""Declarative run specifications with deterministic content hashes.

A paper figure is a *grid*: the cross product of graph configurations,
estimators, propagators, label fractions and repetitions.  This module turns
that grid into data:

* :class:`RunSpec` — one experiment point, fully described by plain JSON
  values (graph config dict, registry names, kwargs, fraction, repetition).
  Its :attr:`~RunSpec.content_hash` is the SHA-256 of the canonical JSON
  encoding, so two specs describe the same experiment iff their hashes are
  equal — the key of the content-addressed result store.
* :class:`GridSpec` — the declarative grid.  :meth:`GridSpec.expand`
  enumerates every :class:`RunSpec` in a deterministic order; construction
  validates estimator/propagator names against the registries up front so a
  typo fails before any work is scheduled.
* :func:`build_graph` — materialize the graph described by a graph config
  dict (synthetic generator, dataset stand-in, or an ``.npz`` file).

Determinism: every run's RNG seed is *derived from its content hash*
(:attr:`RunSpec.run_seed`), so a run's outcome depends only on its
description — not on scheduling order, worker identity, or how many other
runs share the grid.  This is what makes parallel execution bitwise-equal to
serial execution and cached results trustworthy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

# Importing these modules populates the PROPAGATORS/ESTIMATORS registries the
# spec layer validates names against.
import repro.core.estimators  # noqa: F401  (registers estimators)
import repro.propagation  # noqa: F401  (registers propagators)
from repro.core.compatibility import homophily_compatibility, skew_compatibility
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.generator import generate_graph
from repro.graph.graph import Graph
from repro.graph.io import load_graph_npz
from repro.propagation.engine import ESTIMATORS, PROPAGATORS
from repro.utils.placement import assign_hex

__all__ = [
    "RunSpec",
    "GridSpec",
    "build_graph",
    "canonical_json",
    "content_hash",
]

GRAPH_KINDS = ("generate", "dataset", "npz")


def canonical_json(payload) -> str:
    """Serialize ``payload`` to the canonical JSON form used for hashing.

    Keys are sorted and separators minimal, so logically equal dictionaries
    always produce the same byte string.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ------------------------------------------------------------- graph configs
def _validate_graph_config(config: dict) -> dict:
    """Check a graph config dict and return it with the kind defaulted."""
    if not isinstance(config, dict):
        raise ValueError(f"graph config must be a dict, got {type(config).__name__}")
    config = dict(config)
    kind = config.setdefault("kind", "generate")
    if kind not in GRAPH_KINDS:
        raise ValueError(
            f"unknown graph config kind {kind!r}; choose from {sorted(GRAPH_KINDS)}"
        )
    if kind == "generate":
        for required in ("n_nodes", "n_edges"):
            if required not in config:
                raise ValueError(f"generate graph config needs {required!r}")
        pattern = config.get("pattern", "skew")
        if pattern not in ("skew", "homophily"):
            raise ValueError(
                f"unknown compatibility pattern {pattern!r}; "
                "choose 'skew' or 'homophily'"
            )
    elif kind == "dataset":
        name = config.get("name")
        if name not in dataset_names():
            raise ValueError(
                f"unknown dataset {name!r}; available: {dataset_names()}"
            )
    elif kind == "npz":
        if "path" not in config:
            raise ValueError("npz graph config needs 'path'")
    return config


def build_graph(config: dict) -> Graph:
    """Materialize the :class:`~repro.graph.graph.Graph` a config describes.

    Three kinds are supported:

    * ``{"kind": "generate", "n_nodes": ..., "n_edges": ..., "n_classes": 3,
      "h": 3.0, "pattern": "skew"|"homophily", "distribution": "uniform",
      "seed": 0}`` — the planted-compatibility synthetic generator;
    * ``{"kind": "dataset", "name": "cora", "scale": 0.2, "seed": 0}`` — a
      real-world dataset stand-in;
    * ``{"kind": "npz", "path": "graph.npz"}`` — a stored graph bundle.
      Note the content hash covers the *path*, not the file bytes; re-using a
      path for a different graph invalidates cached results silently.
    """
    config = _validate_graph_config(config)
    kind = config["kind"]
    if kind == "generate":
        n_classes = int(config.get("n_classes", 3))
        h = float(config.get("h", 3.0))
        if config.get("pattern", "skew") == "homophily":
            compatibility = homophily_compatibility(n_classes, h=h)
        else:
            compatibility = skew_compatibility(n_classes, h=h)
        return generate_graph(
            int(config["n_nodes"]),
            int(config["n_edges"]),
            compatibility,
            distribution=config.get("distribution", "uniform"),
            seed=int(config.get("seed", 0)),
            name=str(config.get("name", "grid-synthetic")),
        )
    if kind == "dataset":
        return load_dataset(
            config["name"],
            scale=config.get("scale"),
            seed=int(config.get("seed", 0)),
        )
    return load_graph_npz(config["path"])


# ------------------------------------------------------------------ run spec
def _normalize_algorithm(entry, registry: dict, registry_label: str) -> tuple[str, dict]:
    """Turn ``"name"`` or ``{"name": ..., "kwargs": {...}}`` into a pair."""
    if isinstance(entry, str):
        name, kwargs = entry, {}
    elif isinstance(entry, dict):
        name = entry.get("name")
        kwargs = dict(entry.get("kwargs", {}))
    else:
        raise ValueError(
            f"{registry_label} entries must be names or {{name, kwargs}} dicts, "
            f"got {type(entry).__name__}"
        )
    if name not in registry:
        raise ValueError(
            f"unknown {registry_label} {name!r}; registered: {sorted(registry)}"
        )
    return name, kwargs


@dataclass
class RunSpec:
    """One fully described experiment point of a grid.

    All fields are plain JSON values so the spec pickles cheaply, round-trips
    through the store, and hashes canonically.  ``experiment_kwargs`` are
    forwarded verbatim to :func:`repro.eval.experiment.run_experiment`
    (e.g. ``{"n_propagation_iterations": 10}``).
    """

    graph: dict
    estimator: str
    label_fraction: float
    estimator_kwargs: dict = field(default_factory=dict)
    propagator: str = "linbp"
    propagator_kwargs: dict = field(default_factory=dict)
    repetition: int = 0
    base_seed: int = 0
    experiment_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.graph = _validate_graph_config(self.graph)
        self.estimator, merged = _normalize_algorithm(
            {"name": self.estimator, "kwargs": self.estimator_kwargs},
            ESTIMATORS,
            "estimator",
        )
        self.estimator_kwargs = merged
        self.propagator, merged = _normalize_algorithm(
            {"name": self.propagator, "kwargs": self.propagator_kwargs},
            PROPAGATORS,
            "propagator",
        )
        self.propagator_kwargs = merged
        self.label_fraction = float(self.label_fraction)
        if not 0.0 < self.label_fraction <= 1.0:
            raise ValueError(
                f"label_fraction must be in (0, 1], got {self.label_fraction}"
            )
        self.repetition = int(self.repetition)
        self.base_seed = int(self.base_seed)

    def to_dict(self) -> dict:
        """Plain-JSON description; the canonical form drives the hash."""
        return {
            "graph": self.graph,
            "estimator": self.estimator,
            "estimator_kwargs": self.estimator_kwargs,
            "propagator": self.propagator,
            "propagator_kwargs": self.propagator_kwargs,
            "label_fraction": self.label_fraction,
            "repetition": self.repetition,
            "base_seed": self.base_seed,
            "experiment_kwargs": self.experiment_kwargs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        return cls(
            graph=payload["graph"],
            estimator=payload["estimator"],
            estimator_kwargs=payload.get("estimator_kwargs", {}),
            propagator=payload.get("propagator", "linbp"),
            propagator_kwargs=payload.get("propagator_kwargs", {}),
            label_fraction=payload["label_fraction"],
            repetition=payload.get("repetition", 0),
            base_seed=payload.get("base_seed", 0),
            experiment_kwargs=payload.get("experiment_kwargs", {}),
        )

    @property
    def content_hash(self) -> str:
        """SHA-256 of the canonical spec — the store key of this run."""
        return content_hash(self.to_dict())

    @property
    def graph_hash(self) -> str:
        """Hash of the graph config alone — the executor's batching key."""
        return content_hash(self.graph)

    @property
    def run_seed(self) -> int:
        """Deterministic RNG seed derived from the content hash.

        Drives the stratified seed-label sampling (and, unless overridden in
        ``estimator_kwargs``, the estimator's own randomness), so a run's
        outcome is a pure function of its description.
        """
        return int(self.content_hash[:16], 16) % (2**32)

    def label(self) -> str:
        """Short human-readable identifier used in progress lines."""
        return (
            f"{self.graph.get('name', self.graph['kind'])}"
            f"/{self.estimator}/{self.propagator}"
            f"/f={self.label_fraction:g}/r={self.repetition}"
        )


# ----------------------------------------------------------------- grid spec
@dataclass
class GridSpec:
    """The declarative cross product behind a multi-point figure.

    ``estimators`` and ``propagators`` entries are registry names or
    ``{"name": ..., "kwargs": {...}}`` dicts; graph configs are the dicts
    accepted by :func:`build_graph`.  Everything is validated eagerly so a
    grid either expands completely or fails with a message naming the valid
    choices.
    """

    graphs: list
    estimators: list
    label_fractions: list
    propagators: list = field(default_factory=lambda: ["linbp"])
    n_repetitions: int = 1
    base_seed: int = 0
    experiment_kwargs: dict = field(default_factory=dict)
    name: str = "grid"

    def __post_init__(self) -> None:
        if not self.graphs:
            raise ValueError("grid needs at least one graph config")
        if not self.estimators:
            raise ValueError("grid needs at least one estimator")
        if not self.label_fractions:
            raise ValueError("grid needs at least one label fraction")
        self.graphs = [_validate_graph_config(config) for config in self.graphs]
        self.estimators = [
            _normalize_algorithm(entry, ESTIMATORS, "estimator")
            for entry in self.estimators
        ]
        self.propagators = [
            _normalize_algorithm(entry, PROPAGATORS, "propagator")
            for entry in self.propagators
        ]
        self.label_fractions = [float(fraction) for fraction in self.label_fractions]
        self.n_repetitions = int(self.n_repetitions)
        if self.n_repetitions < 1:
            raise ValueError("n_repetitions must be >= 1")
        self.base_seed = int(self.base_seed)

    @property
    def n_runs(self) -> int:
        """Number of individual runs the grid expands to."""
        return (
            len(self.graphs)
            * len(self.estimators)
            * len(self.propagators)
            * len(self.label_fractions)
            * self.n_repetitions
        )

    def expand(self) -> list[RunSpec]:
        """Enumerate every :class:`RunSpec` in deterministic order.

        Order: graphs (outermost), propagators, label fractions, repetitions,
        estimators (innermost) — estimators at the same (fraction, repetition)
        are adjacent, mirroring the paired comparison of the sweep functions.
        """
        runs: list[RunSpec] = []
        for graph_config in self.graphs:
            for propagator_name, propagator_kwargs in self.propagators:
                for fraction in self.label_fractions:
                    for repetition in range(self.n_repetitions):
                        for estimator_name, estimator_kwargs in self.estimators:
                            runs.append(
                                RunSpec(
                                    graph=graph_config,
                                    estimator=estimator_name,
                                    estimator_kwargs=dict(estimator_kwargs),
                                    propagator=propagator_name,
                                    propagator_kwargs=dict(propagator_kwargs),
                                    label_fraction=fraction,
                                    repetition=repetition,
                                    base_seed=self.base_seed,
                                    experiment_kwargs=dict(self.experiment_kwargs),
                                )
                            )
        return runs

    def shard(self, index: int, n_shards: int) -> list[RunSpec]:
        """Deterministically partition the grid's runs into ``n_shards`` parts.

        A run belongs to the shard its content hash maps to, so the
        partition depends only on the grid's description: every process
        computes the same split, shards are disjoint, and their union is
        exactly :meth:`expand`.  Combined with a shared (or later merged)
        store, ``shard(i, n)`` is how one grid spreads across machines —
        the content-addressed keys make the results trivially mergeable.

        Hashing (rather than round-robin over the expansion order) keeps
        the assignment stable under grid edits: adding a graph config or an
        estimator never moves existing runs between shards, so per-machine
        caches stay warm.  The assignment arithmetic itself lives in
        :func:`repro.utils.placement.assign_hex`, shared with the serving
        router's session placement — and pinned by a regression test so it
        can never silently move existing runs between shards.
        """
        index = int(index)
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not 0 <= index < n_shards:
            raise ValueError(
                f"shard index must be in [0, {n_shards}), got {index}"
            )
        return [
            run
            for run in self.expand()
            if assign_hex(run.content_hash, n_shards) == index
        ]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "graphs": self.graphs,
            "estimators": [
                {"name": name, "kwargs": kwargs} for name, kwargs in self.estimators
            ],
            "propagators": [
                {"name": name, "kwargs": kwargs} for name, kwargs in self.propagators
            ],
            "label_fractions": self.label_fractions,
            "n_repetitions": self.n_repetitions,
            "base_seed": self.base_seed,
            "experiment_kwargs": self.experiment_kwargs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GridSpec":
        unknown = set(payload) - {
            "name",
            "graphs",
            "estimators",
            "propagators",
            "label_fractions",
            "n_repetitions",
            "base_seed",
            "experiment_kwargs",
        }
        if unknown:
            raise ValueError(f"unknown grid spec fields: {sorted(unknown)}")
        for required in ("graphs", "estimators", "label_fractions"):
            if required not in payload:
                raise ValueError(f"grid spec needs {required!r}")
        return cls(
            graphs=payload["graphs"],
            estimators=payload["estimators"],
            label_fractions=payload["label_fractions"],
            propagators=payload.get("propagators", ["linbp"]),
            n_repetitions=payload.get("n_repetitions", 1),
            base_seed=payload.get("base_seed", 0),
            experiment_kwargs=payload.get("experiment_kwargs", {}),
            name=payload.get("name", "grid"),
        )

    @classmethod
    def from_json(cls, path) -> "GridSpec":
        """Load a grid spec from a JSON file (the ``repro run`` input)."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: grid spec must be a JSON object")
        return cls.from_dict(payload)

    def to_json(self, path) -> Path:
        """Write the spec as formatted JSON and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path
