"""Progress and summary reporting for grid executions.

Two halves:

* :class:`ProgressPrinter` — a line-oriented live progress callback for
  :func:`~repro.runner.executor.execute_grid`: one line per completed run
  with a running ``done/total`` counter, cache hits marked, failures
  surfaced immediately.
* Store reporting — :func:`store_to_sweep` reconstructs a
  :class:`~repro.eval.sweeps.SweepResult` from a result store so the
  existing table renderers in :mod:`repro.eval.reporting` (Markdown, CSV)
  work on stored grids unchanged; :func:`render_store_report` is the
  ``repro report`` body built on top of it.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import obs
from repro.eval.experiment import ExperimentResult
from repro.eval.reporting import sweep_to_markdown
from repro.eval.sweeps import SweepResult
from repro.runner.executor import ExecutionReport, RunOutcome
from repro.runner.store import ResultStore

__all__ = [
    "ProgressPrinter",
    "store_to_sweep",
    "render_store_report",
    "summarize_report",
]


class ProgressPrinter:
    """Prints one status line per finished run.

    Use as the ``progress=`` callback of
    :func:`~repro.runner.executor.execute_grid`; construction takes the
    total so the counter is right even though outcomes arrive out of order.
    """

    def __init__(self, total: int, stream=None, enabled: bool = True) -> None:
        self.total = total
        self.done = 0
        self.stream = stream if stream is not None else sys.stdout
        self.enabled = enabled
        registry = obs.metrics()
        self._g_done = registry.gauge(
            "repro_runner_progress_done",
            "Completed runs in the current grid execution.",
        )
        self._g_total = registry.gauge(
            "repro_runner_progress_total",
            "Planned runs in the current grid execution.",
        )
        self._g_total.set(total)
        self._g_done.set(0)

    def __call__(self, outcome: RunOutcome) -> None:
        self.done += 1
        self._g_done.set(self.done)
        if not self.enabled:
            return
        if outcome.status == "cached":
            detail = "cache hit"
        elif outcome.status == "ok":
            detail = f"ok in {outcome.timing.get('total_seconds', 0.0):.2f}s"
        else:
            first_line = (outcome.error or "").strip().splitlines()
            detail = f"{outcome.status}: {first_line[-1] if first_line else '?'}"
        print(
            f"[{self.done}/{self.total}] {outcome.spec.label()} — {detail}",
            file=self.stream,
        )


def summarize_report(report: ExecutionReport) -> str:
    """One-paragraph execution summary (printed by ``repro run``)."""
    lines = [
        f"runs: {report.n_total} total, {report.n_cached} cache hits "
        f"({report.cache_hit_rate:.0%}), {report.n_executed} executed, "
        f"{report.n_errors} failed",
        f"workers: {report.n_workers}, wall time: {report.elapsed_seconds:.2f}s",
    ]
    return "\n".join(lines)


def _record_to_experiment(record: dict) -> ExperimentResult | None:
    """Rebuild an :class:`ExperimentResult` from a stored ``ok`` record."""
    result = record.get("result")
    if record.get("status") not in ("ok", "cached") or not result:
        return None
    timing = record.get("timing", {})
    return ExperimentResult(
        method=result["method"],
        label_fraction=result["label_fraction"],
        accuracy=result["accuracy"],
        l2_to_gold=result["l2_to_gold"],
        estimation_seconds=timing.get("estimation_seconds", 0.0),
        propagation_seconds=timing.get("propagation_seconds", 0.0),
        compatibility=np.asarray(result["compatibility"]),
        n_seeds=result["n_seeds"],
        details={},
        propagator=result.get("propagator", "linbp"),
        propagation_iterations=result.get("propagation_iterations", 0),
        propagation_converged=result.get("propagation_converged", True),
    )


def store_to_sweep(store: ResultStore) -> SweepResult:
    """View a result store as a label-fraction sweep.

    Successful records are grouped into the ``(method, label_fraction)``
    cells of a :class:`~repro.eval.sweeps.SweepResult`, which the existing
    reporting code renders; failed runs are simply absent (their cells show
    fewer repetitions).  A store that spans several graph configs or
    propagators gets one column per distinct combination (method labels are
    qualified as ``graph:method/propagator``) — cells never silently average
    across different experiments.
    """
    stored_records = store.records()
    graph_labels = set()
    propagators = set()
    for stored in stored_records:
        spec = stored.get("spec", {})
        graph = spec.get("graph", {})
        graph_labels.add(graph.get("name") or graph.get("kind"))
        propagators.add(spec.get("propagator"))
    records = []
    for stored in stored_records:
        experiment = _record_to_experiment(stored)
        if experiment is None:
            continue
        spec = stored["spec"]
        if len(graph_labels) > 1:
            graph = spec.get("graph", {})
            experiment.method = (
                f"{graph.get('name') or graph.get('kind')}:{experiment.method}"
            )
        if len(propagators) > 1:
            experiment.method = f"{experiment.method}/{spec.get('propagator')}"
        experiment.parameter_value = spec["label_fraction"]  # type: ignore[attr-defined]
        records.append(experiment)
    fractions = sorted({record.parameter_value for record in records})  # type: ignore[attr-defined]
    methods = sorted({record.method for record in records})
    sweep = SweepResult(
        parameter_name="label_fraction",
        parameter_values=fractions,
        methods=methods,
    )
    sweep.records = records
    return sweep


def render_store_report(store: ResultStore, metric: str = "accuracy") -> str:
    """Render a stored grid as status counts plus a mean-metric table."""
    counts = store.status_counts()
    count_text = ", ".join(
        f"{counts[status]} {status}" for status in sorted(counts)
    ) or "empty"
    lines = [
        f"store: {store.path} [{store.backend_name}]",
        f"records: {len(store)} ({count_text})",
    ]
    sweep = store_to_sweep(store)
    if sweep.records:
        lines.append("")
        lines.append(f"mean {metric} by (label_fraction x method), n = repetitions:")
        lines.append(sweep_to_markdown(sweep, metric=metric, show_repetitions=True))
    return "\n".join(lines)
