"""CI gate: compare a fresh benchmark JSON against a committed baseline.

Usage: ``python scripts/bench_check.py FRESH BASELINE [options]``

The committed ``BENCH_*.json`` files are performance *trajectories*, not
contracts — CI machines are noisy and usually run smaller configurations
than the baselines were recorded on.  So by default this gate checks only
the **scale-free** metrics, the ones that must hold at any graph size:

* correctness — every ``*_deviation`` value stays under ``--max-deviation``
  (the streaming contract: incremental answers match the batch re-solve);
* invariants — mismatch counters are zero, mismatch flags are false,
  ``reflected``/``staleness_reset`` probes are true, ``errors`` lists are
  empty;
* instrumentation budget — every ``*overhead_fraction`` metric (metrics
  recording and sampled tracing alike) stays under ``--max-overhead``
  (looser than the 2% recording budget: CI medians of millisecond steps
  are noisy);
* speedups — each ``*speedup*`` metric stays above
  ``speedup_fraction * min(baseline, speedup_cap)``.  The cap keeps the
  floor honest for huge baseline speedups (a 500x cached replay need only
  stay above ``0.5 * 4 = 2x``), while small baselines (localized vs warm
  at 1.1x) get a proportional floor.

Raw timings (``*_seconds``, ``*_ms``, ``*_per_second``) are compared only
with ``--check-timings``, which is only meaningful when the fresh run used
the baseline's exact configuration on comparable hardware.

Exit status: 0 all checks pass, 1 regression found, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Config-describing keys: differences here mean the runs are not comparable
# at the timing level, which is worth a warning but never a failure.
CONFIG_KEYS = {"graph", "workload", "grid", "n_workers", "n_repeats",
               "max_iterations", "repeats", "kernel_backend"}

# Invariant keys: (expected truthiness). Checked on the fresh run alone.
TRUE_FLAGS = {"reflected", "staleness_reset"}
FALSE_FLAGS = {"records_mismatch"}
ZERO_COUNTERS = {"parallel_serial_mismatches"}


class Check:
    """One comparison outcome: a dotted path, a verdict, and the numbers."""

    def __init__(self, path: str, ok: bool, detail: str):
        self.path = path
        self.ok = ok
        self.detail = detail

    def __repr__(self):  # pragma: no cover - debug aid
        return f"Check({self.path!r}, ok={self.ok})"


def is_timing_key(key: str) -> bool:
    return key.endswith(("_seconds", "_ms")) or key.endswith("_per_second")


def higher_is_better(key: str) -> bool:
    return key.endswith("_per_second")


def record_key(entry: dict) -> tuple | None:
    """Identity of a benchmark record, for cross-file matching."""
    if not isinstance(entry, dict):
        return None
    keys = [k for k in ("propagator", "delta_fraction", "name") if k in entry]
    if not keys:
        return None
    return tuple((k, entry[k]) for k in keys)


def pair_lists(fresh: list, baseline: list):
    """Match record lists by identity keys, falling back to position."""
    baseline_by_key = {}
    for entry in baseline:
        key = record_key(entry)
        if key is not None:
            baseline_by_key[key] = entry
    for index, entry in enumerate(fresh):
        key = record_key(entry)
        if key is not None:
            yield str(dict(key)), entry, baseline_by_key.get(key)
        elif index < len(baseline):
            yield f"[{index}]", entry, baseline[index]
        else:
            yield f"[{index}]", entry, None


def compare(fresh, baseline, args, path="") -> list[Check]:
    """Walk both documents, emitting one Check per gated metric."""
    checks: list[Check] = []

    def at(key) -> str:
        return f"{path}.{key}" if path else str(key)

    if isinstance(fresh, dict):
        for key, value in fresh.items():
            base_value = baseline.get(key) if isinstance(baseline, dict) else None
            if key in CONFIG_KEYS:
                if base_value is not None and base_value != value:
                    print(f"note: {at(key)} differs from baseline "
                          f"(fresh run uses its own configuration)")
                continue
            if isinstance(value, dict):
                checks.extend(compare(value, base_value or {}, args, at(key)))
            elif isinstance(value, list) and value and isinstance(value[0], dict):
                for label, entry, base_entry in pair_lists(value, base_value or []):
                    checks.extend(
                        compare(entry, base_entry or {}, args, f"{at(key)}{label}")
                    )
            else:
                checks.extend(check_scalar(at(key), key, value, base_value, args))
    return checks


def check_scalar(full_path, key, value, base_value, args) -> list[Check]:
    if key in TRUE_FLAGS:
        return [Check(full_path, value is True, f"expected true, got {value!r}")]
    if key in FALSE_FLAGS:
        return [Check(full_path, value is False, f"expected false, got {value!r}")]
    if key in ZERO_COUNTERS:
        return [Check(full_path, value == 0, f"expected 0, got {value!r}")]
    if key == "errors":
        return [Check(full_path, value == [], f"expected no errors, got {value!r}")]
    if key.endswith("_deviation") and isinstance(value, (int, float)):
        return [Check(
            full_path, value <= args.max_deviation,
            f"{value:.3e} <= {args.max_deviation:.1e}",
        )]
    if key.endswith("overhead_fraction") and isinstance(value, (int, float)):
        return [Check(
            full_path, value <= args.max_overhead,
            f"{value:+.2%} <= {args.max_overhead:.0%}",
        )]
    if "speedup" in key and isinstance(value, (int, float)):
        if not isinstance(base_value, (int, float)):
            return []
        floor = args.speedup_fraction * min(base_value, args.speedup_cap)
        return [Check(
            full_path, value >= floor,
            f"{value:.2f}x >= {floor:.2f}x "
            f"(baseline {base_value:.2f}x)",
        )]
    if is_timing_key(key) and isinstance(value, (int, float)):
        if not args.check_timings or not isinstance(base_value, (int, float)):
            return []
        if higher_is_better(key):
            bound = base_value / (1.0 + args.timing_tolerance)
            ok = value >= bound
            detail = f"{value:.4g} >= {bound:.4g} (baseline {base_value:.4g})"
        else:
            bound = base_value * (1.0 + args.timing_tolerance)
            ok = value <= bound
            detail = f"{value:.4g} <= {bound:.4g} (baseline {base_value:.4g})"
        return [Check(full_path, ok, detail)]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="benchmark JSON produced by this run")
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("--max-deviation", type=float, default=1e-6,
                        help="absolute bound on every *_deviation metric")
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="bound on obs_overhead.overhead_fraction")
    parser.add_argument("--speedup-fraction", type=float, default=0.5,
                        help="fresh speedups must reach this fraction of "
                             "min(baseline, --speedup-cap)")
    parser.add_argument("--speedup-cap", type=float, default=4.0,
                        help="baseline speedups are capped here before the "
                             "fraction floor is applied")
    parser.add_argument("--check-timings", action="store_true",
                        help="also band-check raw *_seconds / *_per_second "
                             "values (same config + hardware only)")
    parser.add_argument("--timing-tolerance", type=float, default=0.5,
                        help="relative slack for --check-timings bands")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    documents = []
    for role, raw_path in (("fresh", args.fresh), ("baseline", args.baseline)):
        path = Path(raw_path)
        if not path.exists():
            print(f"bench_check: {role} file not found: {path}", file=sys.stderr)
            return 2
        try:
            documents.append(json.loads(path.read_text(encoding="utf-8")))
        except json.JSONDecodeError as exc:
            print(f"bench_check: {role} file {path} is not JSON: {exc}",
                  file=sys.stderr)
            return 2
    fresh, baseline = documents

    checks = compare(fresh, baseline, args)
    failures = [check for check in checks if not check.ok]
    for check in checks:
        marker = "ok  " if check.ok else "FAIL"
        print(f"{marker} {check.path}: {check.detail}")
    print(f"bench_check: {len(checks) - len(failures)}/{len(checks)} "
          f"checks passed against {args.baseline}")
    if failures:
        print(f"bench_check: {len(failures)} regression(s):", file=sys.stderr)
        for check in failures:
            print(f"  {check.path}: {check.detail}", file=sys.stderr)
        return 1
    if not checks:
        print("bench_check: no gated metrics found — nothing was checked",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
