"""Regenerate examples/streams/drift_events.jsonl (committed artifact).

A label-noise event stream against the CI serve graph
(``repro generate --nodes 500 --edges 2500 --classes 3 --skew 3 --seed 2``,
served with ``--fraction 0.1 --seed 0``): the first events reveal *true*
labels, the rest reveal adversarially permuted ones, so a replay shows
prequential accuracy collapsing and the compatibility-drift gauge rising.
CI's quality smoke drives this stream at a live fleet and asserts exactly
that; the script verifies the same properties by replaying the stream
through a session before writing the file.

Usage: PYTHONPATH=src python scripts/make_drift_stream.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.compatibility import skew_compatibility
from repro.core.statistics import gold_standard_compatibility
from repro.eval.seeding import stratified_seed_labels
from repro.graph.generator import generate_graph
from repro.propagation.engine import get_propagator
from repro.stream import GraphDelta, StreamingSession
from repro.stream.replay import replay_events

OUTPUT = Path(__file__).resolve().parent.parent / "examples/streams/drift_events.jsonl"

N_CLEAN_EVENTS = 4
N_NOISY_EVENTS = 8
REVEALS_PER_EVENT = 12
EDGES_PER_EVENT = 4


def fresh_edges(rng, existing: set, n_nodes: int, count: int) -> list:
    edges = []
    while len(edges) < count:
        u, v = (int(x) for x in rng.integers(0, n_nodes, 2))
        u, v = min(u, v), max(u, v)
        if u == v or (u, v) in existing:
            continue
        existing.add((u, v))
        edges.append([u, v])
    return edges


def main() -> None:
    graph = generate_graph(
        500, 2_500, skew_compatibility(3, h=3.0), seed=2, name="drift-stream"
    )
    truth = graph.require_labels()
    seeds = stratified_seed_labels(truth, fraction=0.1, rng=0)
    hidden = list(np.flatnonzero(seeds < 0))
    rng = np.random.default_rng(17)
    rng.shuffle(hidden)
    existing = set(
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in zip(*graph.adjacency.nonzero())
    )

    events = []
    cursor = 0
    for index in range(N_CLEAN_EVENTS + N_NOISY_EVENTS):
        nodes = hidden[cursor: cursor + REVEALS_PER_EVENT]
        cursor += REVEALS_PER_EVENT
        noisy = index >= N_CLEAN_EVENTS
        reveal = [
            [int(node), int((truth[node] + 1) % 3 if noisy else truth[node])]
            for node in nodes
        ]
        events.append({
            "add_edges": fresh_edges(rng, existing, 500, EDGES_PER_EVENT),
            "reveal": reveal,
        })

    # Verify the stream actually shows the story before committing it.
    deltas = [GraphDelta.from_dict(event) for event in events]
    propagator = get_propagator("linbp", max_iterations=300, tolerance=1e-8)
    compatibility = gold_standard_compatibility(graph)  # serve's GS estimate
    clean_report = replay_events(
        graph.copy(), deltas[:N_CLEAN_EVENTS], propagator,
        compatibility=compatibility, seed_labels=seeds.copy(), score=False,
    )
    full_report = replay_events(
        graph.copy(), deltas, propagator,
        compatibility=compatibility, seed_labels=seeds.copy(), score=False,
    )
    clean = clean_report.quality
    full = full_report.quality
    clean_accuracy = clean["prequential"]["accuracy"]
    late_scored = full["prequential"]["scored"] - clean["prequential"]["scored"]
    late_correct = full["prequential"]["correct"] - clean["prequential"]["correct"]
    late_accuracy = late_correct / late_scored
    drift_before, drift_after = clean["drift"]["value"], full["drift"]["value"]
    print(f"clean-phase accuracy: {clean_accuracy:.3f}")
    print(f"noisy-phase accuracy: {late_accuracy:.3f}")
    print(f"drift: {drift_before:.3f} -> {drift_after:.3f}")
    assert clean_accuracy - late_accuracy > 0.3, "label noise must tank accuracy"
    assert drift_after - drift_before > 0.1, "label noise must move the drift gauge"

    with OUTPUT.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    print(f"wrote {len(events)} events to {OUTPUT}")


if __name__ == "__main__":
    main()
