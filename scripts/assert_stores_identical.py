"""CI assertion: sharded and merged stores are record-identical to a reference.

Usage: ``python scripts/assert_stores_identical.py REFERENCE OTHER [OTHER...]``

Every OTHER store must hold exactly the reference store's records — same
hashes, same deterministic ``result`` payloads — and, when both sides have
a manifest, the same manifest ``records`` entries.  This is the acceptance
check behind sharded execution: running a grid as ``--shard 0/2`` +
``--shard 1/2`` into a shared store (and merging it into another backend)
must be indistinguishable from the unsharded run.
"""

from __future__ import annotations

import sys

from repro.runner import ResultStore


def payloads(store: ResultStore) -> list[tuple[str, dict]]:
    return [(record["hash"], record["result"]) for record in store.records()]


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    reference = ResultStore(argv[0])
    reference_payloads = payloads(reference)
    reference_manifest = reference.read_manifest()
    if not reference_payloads:
        print(f"reference store {argv[0]} is empty", file=sys.stderr)
        return 1
    for path in argv[1:]:
        other = ResultStore(path)
        if payloads(other) != reference_payloads:
            print(f"{path}: records differ from {argv[0]}", file=sys.stderr)
            return 1
        other_manifest = other.read_manifest()
        if (
            reference_manifest is not None
            and other_manifest is not None
            and other_manifest["records"] != reference_manifest["records"]
        ):
            print(f"{path}: manifest differs from {argv[0]}", file=sys.stderr)
            return 1
        print(
            f"{path} [{other.backend_name}]: {len(other)} records, "
            f"identical to {argv[0]}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
