"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so the package can
be installed with ``pip install -e .`` on environments without the ``wheel``
package (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
